//! The MiniM3 type system.
//!
//! [`TypeTable`] interns every type in a program and answers the questions
//! type-based alias analysis needs:
//!
//! * `Subtypes(T)` — the set of subtypes of `T`, including `T` itself
//!   (§2.1 of the paper);
//! * whether a type is a *pointer type* (participates in SMTypeRefs'
//!   `Group` sets);
//! * whether a type is **branded** (name-equivalent), which matters for
//!   the open-world analysis of §4: unbranded types use structural
//!   equivalence, so unavailable code can reconstruct them;
//! * object field/method layout for lowering and the interpreter.
//!
//! Reference types (`REF T`, open arrays) are structurally interned:
//! writing `REF INTEGER` twice yields the same [`TypeId`] unless branded.
//! OBJECT types are generative, as they are in practice in Modula-3
//! programs (each OBJECT type expression has its own identity).

use std::collections::HashMap;
use std::fmt;

/// Interned type identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A field of an OBJECT or RECORD type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeId,
    /// Word offset of this field within the (flattened) containing type.
    /// For OBJECT types the offset is within the whole object including
    /// inherited fields.
    pub offset: u32,
}

/// A method of an OBJECT type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Method {
    /// Method name.
    pub name: String,
    /// Parameter types (excluding the implicit receiver), with modes.
    pub params: Vec<(ParamMode, TypeId)>,
    /// Return type, if any.
    pub ret: Option<TypeId>,
    /// Name of the implementing procedure for this type, if bound.
    pub impl_proc: Option<String>,
}

/// Parameter passing mode, mirrored from the AST for signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamMode {
    /// By value.
    Value,
    /// By reference (`VAR`).
    Var,
}

/// The structure of a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeKind {
    /// `INTEGER`.
    Integer,
    /// `BOOLEAN`.
    Boolean,
    /// `CHAR`.
    Char,
    /// `TEXT` — immutable strings (a reference at runtime, but opaque and
    /// immutable, so it does not participate in alias analysis).
    Text,
    /// The type of `NIL`, assignable to every reference type.
    Null,
    /// `REF T`.
    Ref {
        /// Brand, if branded (brands force name equivalence).
        brand: Option<String>,
        /// Referent type.
        target: TypeId,
    },
    /// An OBJECT type.
    Object {
        /// The name it was declared under (for display).
        name: String,
        /// Brand, if branded.
        brand: Option<String>,
        /// Supertype, if any.
        super_ty: Option<TypeId>,
        /// Fields introduced by this type (offsets include inherited size).
        fields: Vec<Field>,
        /// Methods introduced or overridden by this type.
        methods: Vec<Method>,
    },
    /// A RECORD type (a value type, flattened inline).
    Record {
        /// Fields with offsets.
        fields: Vec<Field>,
    },
    /// An ARRAY type. `range: None` means an open array (`ARRAY OF T`), a
    /// heap reference with a hidden dope slot holding the element count.
    /// `range: Some((lo, hi))` is a fixed array, a value type legal only as
    /// a field or referent.
    Array {
        /// Index range for fixed arrays.
        range: Option<(i64, i64)>,
        /// Element type.
        elem: TypeId,
    },
}

/// The table of all types in a program.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    kinds: Vec<TypeKind>,
    /// Declared names (builtins plus TYPE declarations).
    names: HashMap<String, TypeId>,
    /// Interning for unbranded REF types, keyed by target.
    ref_intern: HashMap<TypeId, TypeId>,
    /// Interning for open arrays, keyed by element type.
    open_array_intern: HashMap<TypeId, TypeId>,
    /// Interning for fixed arrays, keyed by (lo, hi, elem).
    fixed_array_intern: HashMap<(i64, i64, TypeId), TypeId>,
    /// Direct subtypes of each object type (children in the hierarchy).
    children: HashMap<TypeId, Vec<TypeId>>,
}

impl TypeTable {
    /// Creates a table pre-populated with the builtin types.
    pub fn new() -> Self {
        let mut t = TypeTable::default();
        let int = t.intern_new(TypeKind::Integer);
        let boolean = t.intern_new(TypeKind::Boolean);
        let ch = t.intern_new(TypeKind::Char);
        let text = t.intern_new(TypeKind::Text);
        let _null = t.intern_new(TypeKind::Null);
        t.names.insert("INTEGER".to_string(), int);
        t.names.insert("BOOLEAN".to_string(), boolean);
        t.names.insert("CHAR".to_string(), ch);
        t.names.insert("TEXT".to_string(), text);
        t
    }

    fn intern_new(&mut self, kind: TypeKind) -> TypeId {
        let id = TypeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        id
    }

    /// The builtin `INTEGER` type.
    pub fn integer(&self) -> TypeId {
        TypeId(0)
    }

    /// The builtin `BOOLEAN` type.
    pub fn boolean(&self) -> TypeId {
        TypeId(1)
    }

    /// The builtin `CHAR` type.
    pub fn char(&self) -> TypeId {
        TypeId(2)
    }

    /// The builtin `TEXT` type.
    pub fn text(&self) -> TypeId {
        TypeId(3)
    }

    /// The type of `NIL`.
    pub fn null(&self) -> TypeId {
        TypeId(4)
    }

    /// The structure of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a type of this table.
    pub fn kind(&self, id: TypeId) -> &TypeKind {
        &self.kinds[id.0 as usize]
    }

    /// Number of interned types.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the table has no types (never true: builtins are always present).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Iterates over all type ids.
    pub fn iter(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.kinds.len() as u32).map(TypeId)
    }

    /// Looks up a declared (or builtin) type name.
    pub fn by_name(&self, name: &str) -> Option<TypeId> {
        self.names.get(name).copied()
    }

    /// Binds `name` to `id` (used for TYPE declarations).
    ///
    /// Returns `false` if the name was already bound.
    pub fn bind_name(&mut self, name: &str, id: TypeId) -> bool {
        if self.names.contains_key(name) {
            return false;
        }
        self.names.insert(name.to_string(), id);
        true
    }

    /// Reserves a fresh id for a named OBJECT type before its body is known
    /// (enables recursive and forward references). The kind is a placeholder
    /// and must be completed with [`TypeTable::complete_object`].
    pub fn declare_object(&mut self, name: &str, brand: Option<String>) -> TypeId {
        self.intern_new(TypeKind::Object {
            name: name.to_string(),
            brand,
            super_ty: None,
            fields: Vec::new(),
            methods: Vec::new(),
        })
    }

    /// Fills in the body of an object type reserved with
    /// [`TypeTable::declare_object`].
    pub fn complete_object(
        &mut self,
        id: TypeId,
        super_ty: Option<TypeId>,
        fields: Vec<Field>,
        methods: Vec<Method>,
    ) {
        if let Some(s) = super_ty {
            self.children.entry(s).or_default().push(id);
        }
        let TypeKind::Object {
            super_ty: st,
            fields: f,
            methods: m,
            ..
        } = &mut self.kinds[id.0 as usize]
        else {
            panic!("complete_object on non-object {id}");
        };
        *st = super_ty;
        *f = fields;
        *m = methods;
    }

    /// Interns `REF target`; unbranded refs are structurally shared.
    pub fn mk_ref(&mut self, brand: Option<String>, target: TypeId) -> TypeId {
        if brand.is_none() {
            if let Some(&id) = self.ref_intern.get(&target) {
                return id;
            }
        }
        let id = self.intern_new(TypeKind::Ref {
            brand: brand.clone(),
            target,
        });
        if brand.is_none() {
            self.ref_intern.insert(target, id);
        }
        id
    }

    /// Interns an open array type `ARRAY OF elem`.
    pub fn mk_open_array(&mut self, elem: TypeId) -> TypeId {
        if let Some(&id) = self.open_array_intern.get(&elem) {
            return id;
        }
        let id = self.intern_new(TypeKind::Array { range: None, elem });
        self.open_array_intern.insert(elem, id);
        id
    }

    /// Interns a fixed array type `ARRAY [lo..hi] OF elem`.
    pub fn mk_fixed_array(&mut self, lo: i64, hi: i64, elem: TypeId) -> TypeId {
        if let Some(&id) = self.fixed_array_intern.get(&(lo, hi, elem)) {
            return id;
        }
        let id = self.intern_new(TypeKind::Array {
            range: Some((lo, hi)),
            elem,
        });
        self.fixed_array_intern.insert((lo, hi, elem), id);
        id
    }

    /// Interns an anonymous record type.
    pub fn mk_record(&mut self, fields: Vec<Field>) -> TypeId {
        self.intern_new(TypeKind::Record { fields })
    }

    // ---- queries -------------------------------------------------------

    /// Whether `id` is a reference (pointer) type: OBJECT, REF, or open
    /// array. These are the types SMTypeRefs tracks in its `Group` sets.
    pub fn is_pointer(&self, id: TypeId) -> bool {
        matches!(
            self.kind(id),
            TypeKind::Object { .. } | TypeKind::Ref { .. } | TypeKind::Array { range: None, .. }
        )
    }

    /// Whether `id` is a value (inline) type: scalar, RECORD, fixed array.
    pub fn is_value_type(&self, id: TypeId) -> bool {
        matches!(
            self.kind(id),
            TypeKind::Integer
                | TypeKind::Boolean
                | TypeKind::Char
                | TypeKind::Record { .. }
                | TypeKind::Array { range: Some(_), .. }
        )
    }

    /// Whether `id` is a scalar value type (fits in one slot, no aggregate).
    pub fn is_scalar(&self, id: TypeId) -> bool {
        matches!(
            self.kind(id),
            TypeKind::Integer | TypeKind::Boolean | TypeKind::Char
        ) || self.is_pointer(id)
            || matches!(self.kind(id), TypeKind::Text | TypeKind::Null)
    }

    /// Whether `id` is branded. Unbranded structural types can be
    /// reconstructed by unavailable code (open-world analysis, §4);
    /// branded types observe name equivalence and cannot.
    pub fn is_branded(&self, id: TypeId) -> bool {
        match self.kind(id) {
            TypeKind::Ref { brand, .. } | TypeKind::Object { brand, .. } => brand.is_some(),
            _ => false,
        }
    }

    /// `a <: b` — `a` is a subtype of (or equal to) `b`.
    ///
    /// Subtyping in MiniM3: every type is a subtype of itself; OBJECT
    /// types follow the declared hierarchy; `Null` (the type of NIL) is a
    /// subtype of every pointer type and TEXT.
    pub fn is_subtype(&self, a: TypeId, b: TypeId) -> bool {
        if a == b {
            return true;
        }
        if matches!(self.kind(a), TypeKind::Null)
            && (self.is_pointer(b) || matches!(self.kind(b), TypeKind::Text))
        {
            return true;
        }
        let mut cur = a;
        while let TypeKind::Object {
            super_ty: Some(s), ..
        } = self.kind(cur)
        {
            if *s == b {
                return true;
            }
            cur = *s;
        }
        false
    }

    /// `Subtypes(T)`: all subtypes of `T` including `T` itself (§2.1).
    /// For non-object types the set is `{T}`.
    pub fn subtypes(&self, t: TypeId) -> Vec<TypeId> {
        let mut out = vec![t];
        let mut stack = vec![t];
        while let Some(cur) = stack.pop() {
            if let Some(kids) = self.children.get(&cur) {
                for &k in kids {
                    out.push(k);
                    stack.push(k);
                }
            }
        }
        out
    }

    /// The supertype chain of `t` starting at `t` (for objects), else `[t]`.
    pub fn ancestry(&self, t: TypeId) -> Vec<TypeId> {
        let mut out = vec![t];
        let mut cur = t;
        while let TypeKind::Object {
            super_ty: Some(s), ..
        } = self.kind(cur)
        {
            out.push(*s);
            cur = *s;
        }
        out
    }

    /// Size in slots of a value of type `id` when stored inline.
    /// Pointer types, TEXT, and scalars occupy one slot.
    pub fn size_of(&self, id: TypeId) -> u32 {
        match self.kind(id) {
            TypeKind::Integer
            | TypeKind::Boolean
            | TypeKind::Char
            | TypeKind::Text
            | TypeKind::Null
            | TypeKind::Ref { .. }
            | TypeKind::Object { .. } => 1,
            TypeKind::Record { fields } => fields.iter().map(|f| self.size_of(f.ty)).sum(),
            TypeKind::Array { range, elem } => match range {
                Some((lo, hi)) => ((hi - lo + 1).max(0) as u32) * self.size_of(*elem),
                None => 1, // a reference
            },
        }
    }

    /// Total size in slots of an object's payload, including inherited
    /// fields.
    pub fn object_size(&self, id: TypeId) -> u32 {
        let mut size = 0;
        for t in self.ancestry(id) {
            if let TypeKind::Object { fields, .. } = self.kind(t) {
                size += fields.iter().map(|f| self.size_of(f.ty)).sum::<u32>();
            }
        }
        size
    }

    /// Finds a field by name on an object (searching supertypes) or record.
    /// Returns the field with its absolute offset.
    pub fn field(&self, ty: TypeId, name: &str) -> Option<&Field> {
        match self.kind(ty) {
            TypeKind::Record { fields } => fields.iter().find(|f| f.name == name),
            TypeKind::Object { .. } => {
                for t in self.ancestry(ty) {
                    if let TypeKind::Object { fields, .. } = self.kind(t) {
                        if let Some(f) = fields.iter().find(|f| f.name == name) {
                            return Some(f);
                        }
                    }
                }
                None
            }
            _ => None,
        }
    }

    /// All fields of an object (inherited first) or record.
    pub fn all_fields(&self, ty: TypeId) -> Vec<&Field> {
        match self.kind(ty) {
            TypeKind::Record { fields } => fields.iter().collect(),
            TypeKind::Object { .. } => {
                let mut chain = self.ancestry(ty);
                chain.reverse();
                let mut out = Vec::new();
                for t in chain {
                    if let TypeKind::Object { fields, .. } = self.kind(t) {
                        out.extend(fields.iter());
                    }
                }
                out
            }
            _ => Vec::new(),
        }
    }

    /// Resolves method `name` on `ty`: walks from `ty` up the hierarchy and
    /// returns the most-derived binding together with the type that bound it.
    pub fn resolve_method(&self, ty: TypeId, name: &str) -> Option<(&Method, TypeId)> {
        for t in self.ancestry(ty) {
            if let TypeKind::Object { methods, .. } = self.kind(t) {
                if let Some(m) = methods.iter().find(|m| m.name == name) {
                    return Some((m, t));
                }
            }
        }
        None
    }

    /// The method *signature* as introduced highest in the hierarchy
    /// (used to check override compatibility).
    pub fn method_intro(&self, ty: TypeId, name: &str) -> Option<(&Method, TypeId)> {
        let mut found = None;
        for t in self.ancestry(ty) {
            if let TypeKind::Object { methods, .. } = self.kind(t) {
                if let Some(m) = methods.iter().find(|m| m.name == name) {
                    found = Some((m, t));
                }
            }
        }
        found
    }

    /// Human-readable name of a type.
    pub fn display(&self, id: TypeId) -> String {
        match self.kind(id) {
            TypeKind::Integer => "INTEGER".into(),
            TypeKind::Boolean => "BOOLEAN".into(),
            TypeKind::Char => "CHAR".into(),
            TypeKind::Text => "TEXT".into(),
            TypeKind::Null => "NULL".into(),
            TypeKind::Ref { target, .. } => format!("REF {}", self.display(*target)),
            TypeKind::Object { name, .. } => name.clone(),
            TypeKind::Record { .. } => format!("RECORD#{}", id.0),
            TypeKind::Array { range: None, elem } => format!("ARRAY OF {}", self.display(*elem)),
            TypeKind::Array {
                range: Some((lo, hi)),
                elem,
            } => format!("ARRAY [{lo}..{hi}] OF {}", self.display(*elem)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> (TypeTable, TypeId, TypeId, TypeId, TypeId) {
        // TYPE T = OBJECT f, g: T END; S1, S2, S3 = T OBJECT END;
        let mut tt = TypeTable::new();
        let t = tt.declare_object("T", None);
        let s1 = tt.declare_object("S1", None);
        let s2 = tt.declare_object("S2", None);
        let s3 = tt.declare_object("S3", None);
        tt.complete_object(
            t,
            None,
            vec![
                Field {
                    name: "f".into(),
                    ty: t,
                    offset: 0,
                },
                Field {
                    name: "g".into(),
                    ty: t,
                    offset: 1,
                },
            ],
            vec![],
        );
        tt.complete_object(s1, Some(t), vec![], vec![]);
        tt.complete_object(s2, Some(t), vec![], vec![]);
        tt.complete_object(s3, Some(t), vec![], vec![]);
        (tt, t, s1, s2, s3)
    }

    #[test]
    fn builtins_exist() {
        let tt = TypeTable::new();
        assert_eq!(tt.by_name("INTEGER"), Some(tt.integer()));
        assert_eq!(tt.by_name("TEXT"), Some(tt.text()));
        assert!(tt.is_scalar(tt.integer()));
        assert!(!tt.is_pointer(tt.integer()));
    }

    #[test]
    fn subtypes_of_figure_1() {
        let (tt, t, s1, s2, s3) = figure1();
        let subs = tt.subtypes(t);
        assert_eq!(subs.len(), 4);
        assert!(subs.contains(&s1) && subs.contains(&s2) && subs.contains(&s3));
        assert_eq!(tt.subtypes(s1), vec![s1]);
        assert!(tt.is_subtype(s1, t));
        assert!(!tt.is_subtype(t, s1));
        assert!(!tt.is_subtype(s1, s2));
    }

    #[test]
    fn null_is_subtype_of_pointers() {
        let (tt, t, ..) = figure1();
        assert!(tt.is_subtype(tt.null(), t));
        assert!(!tt.is_subtype(tt.null(), tt.integer()));
    }

    #[test]
    fn ref_interning_is_structural() {
        let mut tt = TypeTable::new();
        let a = tt.mk_ref(None, tt.integer());
        let b = tt.mk_ref(None, tt.integer());
        assert_eq!(a, b, "unbranded refs are structurally shared");
        let c = tt.mk_ref(Some("x".into()), tt.integer());
        assert_ne!(a, c, "branded refs are distinct");
        assert!(tt.is_branded(c));
        assert!(!tt.is_branded(a));
    }

    #[test]
    fn field_lookup_walks_supertypes() {
        let (tt, t, s1, ..) = figure1();
        let f = tt.field(s1, "f").expect("inherited field");
        assert_eq!(f.offset, 0);
        assert_eq!(f.ty, t);
        assert!(tt.field(s1, "nope").is_none());
    }

    #[test]
    fn object_size_includes_inherited() {
        let (mut tt, t, s1, ..) = figure1();
        assert_eq!(tt.object_size(t), 2);
        assert_eq!(tt.object_size(s1), 2);
        // A subtype with its own field is bigger.
        let s4 = tt.declare_object("S4", None);
        tt.complete_object(
            s4,
            Some(t),
            vec![Field {
                name: "h".into(),
                ty: tt.integer(),
                offset: 2,
            }],
            vec![],
        );
        assert_eq!(tt.object_size(s4), 3);
    }

    #[test]
    fn sizes_of_aggregates() {
        let mut tt = TypeTable::new();
        let int = tt.integer();
        let rec = tt.mk_record(vec![
            Field {
                name: "x".into(),
                ty: int,
                offset: 0,
            },
            Field {
                name: "y".into(),
                ty: int,
                offset: 1,
            },
        ]);
        assert_eq!(tt.size_of(rec), 2);
        let arr = tt.mk_fixed_array(0, 9, rec);
        assert_eq!(tt.size_of(arr), 20);
        let open = tt.mk_open_array(int);
        assert_eq!(tt.size_of(open), 1, "open arrays are references");
        assert!(tt.is_pointer(open));
    }

    #[test]
    fn method_resolution_most_derived_wins() {
        let mut tt = TypeTable::new();
        let a = tt.declare_object("A", None);
        let b = tt.declare_object("B", None);
        tt.complete_object(
            a,
            None,
            vec![],
            vec![Method {
                name: "m".into(),
                params: vec![],
                ret: None,
                impl_proc: Some("AM".into()),
            }],
        );
        tt.complete_object(
            b,
            Some(a),
            vec![],
            vec![Method {
                name: "m".into(),
                params: vec![],
                ret: None,
                impl_proc: Some("BM".into()),
            }],
        );
        let (m, owner) = tt.resolve_method(b, "m").unwrap();
        assert_eq!(m.impl_proc.as_deref(), Some("BM"));
        assert_eq!(owner, b);
        let (mi, intro) = tt.method_intro(b, "m").unwrap();
        assert_eq!(intro, a);
        assert_eq!(mi.impl_proc.as_deref(), Some("AM"));
    }

    #[test]
    fn display_names() {
        let (tt, t, ..) = figure1();
        assert_eq!(tt.display(t), "T");
        let mut tt2 = TypeTable::new();
        let r = tt2.mk_ref(None, tt2.integer());
        assert_eq!(tt2.display(r), "REF INTEGER");
    }
}
