//! # MiniM3 — a type-safe Modula-3 subset
//!
//! This crate is the language substrate for the reproduction of
//! *Type-Based Alias Analysis* (Diwan, McKinley & Moss, PLDI 1998). The
//! paper's analyses apply to any statically-typed, type-safe language;
//! MiniM3 keeps exactly the Modula-3 features the paper's machinery
//! depends on:
//!
//! * OBJECT types with single inheritance, fields and methods —
//!   `Subtypes(T)` drives all three alias analyses;
//! * `REF T`, RECORDs, fixed arrays, and open arrays (`ARRAY OF T`) with
//!   hidden dope slots — the *Encapsulation* category of the paper's
//!   limit study comes from implicit dope-vector references;
//! * `BRANDED` types (name equivalence) — the exception to open-world
//!   reconstructibility in §4 of the paper;
//! * `VAR` parameters and `WITH` bindings — the only two ways a program
//!   can take an address, feeding the `AddressTaken` predicate of
//!   FieldTypeDecl.
//!
//! ## Pipeline
//!
//! ```text
//! source --lex/parse--> ast::Module --check--> check::CheckedModule
//! ```
//!
//! Lowering to IR lives in the `tbaa-ir` crate.
//!
//! ## Example
//!
//! ```
//! let src = "
//!     MODULE Quick;
//!     TYPE T = OBJECT f, g: T; END;
//!     VAR t: T;
//!     BEGIN
//!       t := NEW(T);
//!       t.f := t;
//!     END Quick.";
//! let checked = mini_m3::compile(src)?;
//! assert!(checked.types.by_name("T").is_some());
//! # Ok::<(), mini_m3::error::Diagnostics>(())
//! ```

pub mod ast;
pub mod check;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod token;
pub mod types;

pub use check::CheckedModule;
pub use error::Diagnostics;

/// Parses and type-checks a MiniM3 module in one step.
///
/// # Errors
///
/// Returns every lexical, syntactic, and semantic diagnostic found.
pub fn compile(source: &str) -> Result<CheckedModule, Diagnostics> {
    let module = parser::parse(source)?;
    check::check(module)
}

#[cfg(test)]
mod tests {
    #[test]
    fn compile_smoke() {
        let checked =
            crate::compile("MODULE M; VAR x: INTEGER; BEGIN x := 1 + 2 END M.").expect("compiles");
        assert_eq!(checked.globals.len(), 1);
    }

    #[test]
    fn compile_reports_errors() {
        assert!(crate::compile("MODULE M; BEGIN y := 1 END M.").is_err());
    }
}
