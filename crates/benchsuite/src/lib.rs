//! # tbaa-benchsuite — the ten benchmark programs of the TBAA evaluation
//!
//! The paper evaluates on ten Modula-3 programs (Table 4): `format`,
//! `dformat`, `write-pickle`, `k-tree`, `slisp`, `pp`, `dom`, `postcard`,
//! `m2tom3`, and `m3cg`. The originals are not distributable, so this
//! crate ships MiniM3 programs with the same names performing the same
//! *kind* of computation — a text formatter, a document formatter, an
//! AST pickler, k-ary-tree sequences, a small Lisp interpreter, a pretty
//! printer, a distributed-object substrate, a mail reader, a language
//! converter, and a code generator. Like in the paper, `dom` and
//! `postcard` (interactive programs there) are evaluated statically only.
//!
//! Every program is deterministic (seeded LCG written in MiniM3) and
//! takes a `Scale` constant so the harness can trade run time for
//! precision.
//!
//! ## Example
//!
//! ```
//! use tbaa_benchsuite::{suite, Benchmark};
//! let b = Benchmark::by_name("ktree").expect("exists");
//! let prog = b.compile(1).expect("the suite always compiles");
//! assert!(prog.funcs.len() > 3);
//! assert_eq!(suite().len(), 10);
//! ```

use tbaa_ir::Program;

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// The paper's name for it.
    pub name: &'static str,
    /// MiniM3 source text (with the default `Scale`).
    pub source: &'static str,
    /// Whether the paper treats it as interactive (static metrics only).
    pub interactive: bool,
    /// Short description.
    pub about: &'static str,
}

const PROGRAMS: [Benchmark; 10] = [
    Benchmark {
        name: "format",
        source: include_str!("../programs/format.m3"),
        interactive: false,
        about: "text formatter",
    },
    Benchmark {
        name: "dformat",
        source: include_str!("../programs/dformat.m3"),
        interactive: false,
        about: "document formatter",
    },
    Benchmark {
        name: "write-pickle",
        source: include_str!("../programs/writepickle.m3"),
        interactive: false,
        about: "reads and writes an AST",
    },
    Benchmark {
        name: "ktree",
        source: include_str!("../programs/ktree.m3"),
        interactive: false,
        about: "manages sequences using trees",
    },
    Benchmark {
        name: "slisp",
        source: include_str!("../programs/slisp.m3"),
        interactive: false,
        about: "small lisp interpreter",
    },
    Benchmark {
        name: "pp",
        source: include_str!("../programs/pp.m3"),
        interactive: false,
        about: "pretty printer",
    },
    Benchmark {
        name: "dom",
        source: include_str!("../programs/dom.m3"),
        interactive: true,
        about: "system for building distributed applications",
    },
    Benchmark {
        name: "postcard",
        source: include_str!("../programs/postcard.m3"),
        interactive: true,
        about: "graphical mail reader",
    },
    Benchmark {
        name: "m2tom3",
        source: include_str!("../programs/m2tom3.m3"),
        interactive: false,
        about: "converts Modula-2 code to Modula-3",
    },
    Benchmark {
        name: "m3cg",
        source: include_str!("../programs/m3cg.m3"),
        interactive: false,
        about: "code generator",
    },
];

/// The whole suite, in the paper's Table 4 order (by size).
pub fn suite() -> &'static [Benchmark] {
    &PROGRAMS
}

impl Benchmark {
    /// Finds a benchmark by name.
    pub fn by_name(name: &str) -> Option<&'static Benchmark> {
        PROGRAMS.iter().find(|b| b.name == name)
    }

    /// The source with `Scale` rewritten to `scale`.
    pub fn source_at_scale(&self, scale: u32) -> String {
        self.source
            .replace("Scale = 4;", &format!("Scale = {scale};"))
    }

    /// Compiles the program to IR at the given scale.
    ///
    /// # Errors
    ///
    /// Returns front-end diagnostics (the shipped suite always compiles).
    pub fn compile(&self, scale: u32) -> Result<Program, mini_m3::Diagnostics> {
        tbaa_ir::compile_to_ir(&self.source_at_scale(scale))
    }

    /// Non-comment, non-blank source lines — the "Lines" column of
    /// Table 4.
    pub fn loc(&self) -> usize {
        let mut depth = 0usize;
        let mut count = 0usize;
        for line in self.source.lines() {
            let mut significant = false;
            let bytes = line.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                if i + 1 < bytes.len() && bytes[i] == b'(' && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i] == b'*' && bytes[i + 1] == b')' {
                    depth = depth.saturating_sub(1);
                    i += 2;
                } else {
                    if depth == 0 && !bytes[i].is_ascii_whitespace() {
                        significant = true;
                    }
                    i += 1;
                }
            }
            if significant {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa::analysis::{Level, Tbaa};
    use tbaa::World;
    use tbaa_sim::interp::{run, NullHook, RunConfig};

    #[test]
    fn all_programs_compile() {
        for b in suite() {
            match b.compile(1) {
                Ok(p) => assert!(p.funcs.len() >= 2, "{} has procedures", b.name),
                Err(e) => panic!("{} failed to compile:\n{e}", b.name),
            }
        }
    }

    #[test]
    fn non_interactive_programs_run() {
        for b in suite().iter().filter(|b| !b.interactive) {
            let prog = b.compile(1).unwrap();
            let out = run(&prog, &mut NullHook, RunConfig::default())
                .unwrap_or_else(|e| panic!("{} trapped: {e}", b.name));
            assert!(
                out.output.contains(b.name.trim_end_matches("-pickle"))
                    || out.output.contains("check="),
                "{} produced output: {}",
                b.name,
                out.output
            );
            assert!(out.counts.heap_loads > 0, "{} exercises the heap", b.name);
        }
    }

    #[test]
    fn outputs_are_deterministic() {
        let b = Benchmark::by_name("slisp").unwrap();
        let p1 = b.compile(1).unwrap();
        let p2 = b.compile(1).unwrap();
        let o1 = run(&p1, &mut NullHook, RunConfig::default()).unwrap();
        let o2 = run(&p2, &mut NullHook, RunConfig::default()).unwrap();
        assert_eq!(o1.output, o2.output);
        assert_eq!(o1.counts, o2.counts);
    }

    #[test]
    fn rle_preserves_every_benchmark_output() {
        for b in suite().iter().filter(|bb| !bb.interactive) {
            let base = b.compile(1).unwrap();
            let base_out = run(&base, &mut NullHook, RunConfig::default()).unwrap();
            for level in Level::ALL {
                let mut opt = b.compile(1).unwrap();
                let analysis = Tbaa::build(&opt, level, World::Closed);
                tbaa_opt::rle::run_rle(&mut opt, &analysis);
                let opt_out = run(&opt, &mut NullHook, RunConfig::default())
                    .unwrap_or_else(|e| panic!("{} @ {level} trapped: {e}", b.name));
                assert_eq!(
                    base_out.output, opt_out.output,
                    "{} output changed under RLE with {level}",
                    b.name
                );
                assert!(
                    opt_out.counts.heap_loads <= base_out.counts.heap_loads,
                    "{} heap loads must not increase under {level}",
                    b.name
                );
            }
        }
    }

    #[test]
    fn full_pipeline_preserves_every_benchmark_output() {
        for b in suite().iter().filter(|bb| !bb.interactive) {
            let base = b.compile(1).unwrap();
            let base_out = run(&base, &mut NullHook, RunConfig::default()).unwrap();
            let mut opt = b.compile(1).unwrap();
            let report = tbaa_opt::optimize(
                &mut opt,
                &tbaa_opt::OptOptions::full(Level::SmFieldTypeRefs),
            );
            let opt_out = run(&opt, &mut NullHook, RunConfig::default())
                .unwrap_or_else(|e| panic!("{} trapped after full pipeline: {e}", b.name));
            assert_eq!(
                base_out.output, opt_out.output,
                "{} output changed under devirt+inline+RLE ({report:?})",
                b.name
            );
        }
    }

    #[test]
    fn scale_changes_work() {
        let b = Benchmark::by_name("format").unwrap();
        let p1 = b.compile(1).unwrap();
        let p2 = b.compile(2).unwrap();
        let o1 = run(&p1, &mut NullHook, RunConfig::default()).unwrap();
        let o2 = run(&p2, &mut NullHook, RunConfig::default()).unwrap();
        assert!(o2.counts.instructions > o1.counts.instructions);
    }

    #[test]
    fn loc_counts_are_sane() {
        for b in suite() {
            let loc = b.loc();
            assert!(loc > 50, "{} has {loc} lines", b.name);
            assert!(loc < 400, "{} has {loc} lines", b.name);
        }
    }
}
