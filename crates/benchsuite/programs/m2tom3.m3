(* m2tom3 — a source-to-source converter, after the paper's `m2tom3`
   benchmark (converts Modula-2 code to Modula-3). A synthetic Modula-2
   token stream is rewritten through a keyword dictionary (a linked
   structure) and an identifier renamer; the output stream and a string
   table are built as the translation proceeds. *)
MODULE M2toM3;

CONST
  Scale = 4;
  NToks = 1800;
  NKeywords = 12;

TYPE
  IntArr = ARRAY OF INTEGER;
  Entry = OBJECT
    from, dst: INTEGER;
    hits: INTEGER;
    next: Entry;
  END;
  Dict = OBJECT
    first: Entry;
    size: INTEGER;
    misses: INTEGER;
  END;
  Stream = OBJECT
    toks: IntArr;
    n: INTEGER;
  END;
  Renamer = OBJECT
    offset: INTEGER;
    renamed: INTEGER;
  END;

VAR
  seed, check: INTEGER;
  dict: Dict;
  input, output: Stream;
  ren: Renamer;

PROCEDURE Rand (): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN seed;
END Rand;

PROCEDURE AddRule (d: Dict; from, dst: INTEGER) =
VAR e: Entry;
BEGIN
  e := NEW(Entry);
  e.from := from;
  e.dst := dst;
  e.hits := 0;
  e.next := d.first;
  d.first := e;
  d.size := d.size + 1;
END AddRule;

PROCEDURE Translate (d: Dict; tok: INTEGER): INTEGER =
VAR e: Entry;
BEGIN
  e := d.first;
  WHILE e # NIL DO
    IF e.from = tok THEN
      e.hits := e.hits + 1;
      RETURN e.dst;
    END;
    e := e.next;
  END;
  d.misses := d.misses + 1;
  RETURN tok;
END Translate;

PROCEDURE Rename (r: Renamer; tok: INTEGER): INTEGER =
BEGIN
  IF tok >= 1000 THEN
    r.renamed := r.renamed + 1;
    RETURN tok + r.offset;
  END;
  RETURN tok;
END Rename;

PROCEDURE Convert (inp, outp: Stream; d: Dict; r: Renamer) =
VAR t: INTEGER;
BEGIN
  FOR i := 0 TO inp.n - 1 DO
    t := inp.toks[i];
    t := Translate(d, t);
    t := Rename(r, t);
    outp.toks[outp.n] := t;
    outp.n := outp.n + 1;
  END;
END Convert;

PROCEDURE Checksum (s: Stream): INTEGER =
VAR acc: INTEGER;
BEGIN
  acc := 0;
  FOR i := 0 TO s.n - 1 DO
    acc := (acc * 31 + s.toks[i]) MOD 1000000007;
  END;
  RETURN acc;
END Checksum;

PROCEDURE HitTotal (d: Dict): INTEGER =
VAR e: Entry; acc: INTEGER;
BEGIN
  acc := 0;
  e := d.first;
  WHILE e # NIL DO
    acc := acc + e.hits * d.size;
    e := e.next;
  END;
  RETURN acc;
END HitTotal;

BEGIN
  seed := 777;
  check := 0;
  FOR pass := 1 TO Scale DO
    dict := NEW(Dict);
    FOR k := 1 TO NKeywords DO
      AddRule(dict, k, 100 + k);
    END;
    input := NEW(Stream);
    input.toks := NEW(IntArr, NToks);
    input.n := 0;
    FOR i := 1 TO NToks DO
      IF Rand() MOD 3 = 0 THEN
        input.toks[input.n] := 1 + Rand() MOD NKeywords;
      ELSE
        input.toks[input.n] := 1000 + Rand() MOD 300;
      END;
      input.n := input.n + 1;
    END;
    output := NEW(Stream);
    output.toks := NEW(IntArr, NToks);
    output.n := 0;
    ren := NEW(Renamer);
    ren.offset := 5000;
    Convert(input, output, dict, ren);
    check := (check + Checksum(output) + HitTotal(dict) + ren.renamed)
             MOD 1000000007;
  END;
  PRINT("m2tom3 check=");
  PRINTI(check);
END M2toM3.
