(* pp — a pretty printer for token streams of a block-structured
   language, after the paper's `pp` benchmark (a Modula-3 pretty
   printer). A generator emits a nested-token program into an open
   array; the printer replays it with an indentation stack, producing
   layout statistics. *)
MODULE PP;

CONST
  Scale = 4;
  (* token codes *)
  TokProc = 1;
  TokBegin = 2;
  TokEnd = 3;
  TokIf = 4;
  TokThen = 5;
  TokAssign = 6;
  TokSemi = 7;
  TokId = 8;
  TokNum = 9;
  TokCall = 10;
  MaxToks = 6000;
  Width = 40;

TYPE
  IntArr = ARRAY OF INTEGER;
  Stream = OBJECT
    toks: IntArr;
    n: INTEGER;
  END;
  Printer = OBJECT
    indents: IntArr;
    depth: INTEGER;
    col: INTEGER;
    lines: INTEGER;
    chars: INTEGER;
    maxdepth: INTEGER;
  END;

VAR
  seed, check: INTEGER;
  stream: Stream;
  printer: Printer;

PROCEDURE Rand (): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN seed;
END Rand;

PROCEDURE Emit (s: Stream; tok: INTEGER) =
BEGIN
  IF s.n < NUMBER(s.toks) THEN
    s.toks[s.n] := tok;
    s.n := s.n + 1;
  END;
END Emit;

PROCEDURE GenStmt (s: Stream; depth: INTEGER) =
VAR kind: INTEGER;
BEGIN
  kind := Rand() MOD 4;
  IF (kind = 0) AND (depth > 0) THEN
    Emit(s, TokIf);
    Emit(s, TokId);
    Emit(s, TokThen);
    GenBlock(s, depth - 1, 1 + Rand() MOD 3);
    Emit(s, TokEnd);
  ELSIF kind = 1 THEN
    Emit(s, TokCall);
    Emit(s, TokId);
    Emit(s, TokSemi);
  ELSE
    Emit(s, TokId);
    Emit(s, TokAssign);
    Emit(s, TokNum);
    Emit(s, TokSemi);
  END;
END GenStmt;

PROCEDURE GenBlock (s: Stream; depth, stmts: INTEGER) =
BEGIN
  Emit(s, TokBegin);
  FOR i := 1 TO stmts DO
    GenStmt(s, depth);
  END;
  Emit(s, TokEnd);
END GenBlock;

PROCEDURE GenProc (s: Stream; depth: INTEGER) =
BEGIN
  Emit(s, TokProc);
  Emit(s, TokId);
  GenBlock(s, depth, 2 + Rand() MOD 5);
END GenProc;

PROCEDURE TokWidth (tok: INTEGER): INTEGER =
BEGIN
  IF tok = TokProc THEN RETURN 9 END;
  IF (tok = TokBegin) OR (tok = TokEnd) THEN RETURN 5 END;
  IF tok = TokIf THEN RETURN 2 END;
  IF tok = TokThen THEN RETURN 4 END;
  IF tok = TokAssign THEN RETURN 2 END;
  IF tok = TokSemi THEN RETURN 1 END;
  IF tok = TokCall THEN RETURN 6 END;
  RETURN 3;
END TokWidth;

PROCEDURE NewLine (p: Printer) =
BEGIN
  p.lines := p.lines + 1;
  IF p.depth > 0 THEN
    p.col := p.indents[p.depth - 1];
  ELSE
    p.col := 0;
  END;
END NewLine;

PROCEDURE Push (p: Printer) =
BEGIN
  IF p.depth < NUMBER(p.indents) THEN
    p.indents[p.depth] := p.col + 2;
    p.depth := p.depth + 1;
    IF p.depth > p.maxdepth THEN p.maxdepth := p.depth END;
  END;
END Push;

PROCEDURE Pop (p: Printer) =
BEGIN
  IF p.depth > 0 THEN
    p.depth := p.depth - 1;
  END;
END Pop;

PROCEDURE Print1 (p: Printer; tok: INTEGER) =
VAR w: INTEGER;
BEGIN
  w := TokWidth(tok);
  IF p.col + w + 1 > Width THEN
    NewLine(p);
  END;
  p.col := p.col + w + 1;
  p.chars := p.chars + w;
  IF tok = TokBegin THEN
    Push(p);
    NewLine(p);
  ELSIF tok = TokEnd THEN
    Pop(p);
    NewLine(p);
  ELSIF tok = TokSemi THEN
    NewLine(p);
  END;
END Print1;

PROCEDURE Render (p: Printer; s: Stream): INTEGER =
BEGIN
  FOR i := 0 TO s.n - 1 DO
    Print1(p, s.toks[i]);
  END;
  RETURN p.lines * 1000 + p.maxdepth;
END Render;

BEGIN
  seed := 20260705;
  check := 0;
  FOR pass := 1 TO Scale DO
    stream := NEW(Stream);
    stream.toks := NEW(IntArr, MaxToks);
    stream.n := 0;
    FOR procs := 1 TO 6 DO
      GenProc(stream, 3);
    END;
    printer := NEW(Printer);
    printer.indents := NEW(IntArr, 64);
    printer.depth := 0;
    printer.col := 0;
    check := (check + Render(printer, stream)) MOD 1000000007;
    check := check + printer.chars MOD 97;
  END;
  PRINT("pp check=");
  PRINTI(check);
END PP.
