(* ktree — sequences managed with k-ary trees, after the paper's
   `k-tree` benchmark (Bates). Nodes hold inline fixed arrays of keys and
   children; queries navigate by repeated subscripting, which exercises
   FieldTypeDecl's subscript cases and leaves dope-free indexed loads. *)
MODULE KTree;

CONST
  Scale = 4;
  K = 4;
  Depth = 4;
  Queries = 220;

TYPE
  Node = OBJECT
    keys: ARRAY [0..3] OF INTEGER;
    kids: ARRAY [0..3] OF Node;
    nkeys: INTEGER;
    leaf: BOOLEAN;
  END;
  Seq = OBJECT
    root: Node;
    size: INTEGER;
    queries: INTEGER;
  END;

VAR
  seed, checksum: INTEGER;
  s: Seq;

PROCEDURE Rand (): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN seed;
END Rand;

PROCEDURE MakeNode (depth, base: INTEGER): Node =
VAR n: Node;
BEGIN
  n := NEW(Node);
  n.nkeys := K;
  FOR i := 0 TO K - 1 DO
    n.keys[i] := base * 10 + i;
  END;
  IF depth <= 0 THEN
    n.leaf := TRUE;
  ELSE
    n.leaf := FALSE;
    FOR i := 0 TO K - 1 DO
      n.kids[i] := MakeNode(depth - 1, base + i + 1);
    END;
  END;
  RETURN n;
END MakeNode;

PROCEDURE Sum (n: Node): INTEGER =
VAR acc: INTEGER;
BEGIN
  IF n = NIL THEN RETURN 0 END;
  acc := 0;
  FOR i := 0 TO n.nkeys - 1 DO
    acc := acc + n.keys[i];
  END;
  IF NOT n.leaf THEN
    FOR i := 0 TO K - 1 DO
      acc := acc + Sum(n.kids[i]);
    END;
  END;
  RETURN acc;
END Sum;

PROCEDURE Nth (n: Node; idx: INTEGER): INTEGER =
BEGIN
  IF n.leaf THEN
    RETURN n.keys[idx MOD K];
  END;
  RETURN Nth(n.kids[idx MOD K], idx DIV K);
END Nth;

PROCEDURE CountLeaves (n: Node): INTEGER =
VAR c: INTEGER;
BEGIN
  IF n.leaf THEN RETURN 1 END;
  c := 0;
  FOR i := 0 TO K - 1 DO
    c := c + CountLeaves(n.kids[i]);
  END;
  RETURN c;
END CountLeaves;

BEGIN
  seed := 7;
  checksum := 0;
  s := NEW(Seq);
  s.queries := 0;
  FOR pass := 1 TO Scale DO
    s.root := MakeNode(Depth, pass);
    s.size := Sum(s.root);
    checksum := checksum + s.size + CountLeaves(s.root);
    FOR q := 1 TO Queries DO
      (* s.root is invariant across the query loop. *)
      checksum := (checksum + Nth(s.root, Rand() MOD 4096)) MOD 1000000007;
      s.queries := s.queries + 1;
    END;
  END;
  PRINT("ktree check=");
  PRINTI(checksum);
  PRINT(" q=");
  PRINTI(s.queries);
END KTree.
