(* slisp — a small Lisp interpreter, after the paper's `slisp`
   benchmark. Cons cells, boxed numbers, closures, and an association-
   list environment give the heap-heavy load mix (the paper reports 27%
   heap loads for slisp); the runtime type dispatch uses ISTYPE/NARROW. *)
MODULE SLisp;

CONST
  Scale = 4;
  (* special-form symbol ids *)
  SIf = 1;
  SLe = 2;
  SAdd = 3;
  SSub = 4;
  SMul = 5;
  SLambda = 6;
  (* variable symbol ids *)
  VFib = 100;
  VN = 101;
  VTak = 102;
  VX = 103;

TYPE
  Obj = OBJECT END;
  Num = Obj OBJECT val: INTEGER; END;
  Sym = Obj OBJECT id: INTEGER; END;
  Pair = Obj OBJECT car, cdr: Obj; END;
  Clos = Obj OBJECT param: INTEGER; body: Obj; env: Obj; END;
  Stats = OBJECT evals, applies, lookups: INTEGER; END;

VAR
  stats: Stats;
  check: INTEGER;

PROCEDURE Cons (a, d: Obj): Obj =
VAR p: Pair;
BEGIN
  p := NEW(Pair);
  p.car := a;
  p.cdr := d;
  RETURN p;
END Cons;

PROCEDURE MkNum (v: INTEGER): Obj =
VAR n: Num;
BEGIN
  n := NEW(Num);
  n.val := v;
  RETURN n;
END MkNum;

PROCEDURE MkSym (id: INTEGER): Obj =
VAR s: Sym;
BEGIN
  s := NEW(Sym);
  s.id := id;
  RETURN s;
END MkSym;

PROCEDURE List2 (a, b: Obj): Obj =
BEGIN
  RETURN Cons(a, Cons(b, NIL));
END List2;

PROCEDURE List3 (a, b, c: Obj): Obj =
BEGIN
  RETURN Cons(a, Cons(b, Cons(c, NIL)));
END List3;

PROCEDURE List4 (a, b, c, d: Obj): Obj =
BEGIN
  RETURN Cons(a, Cons(b, Cons(c, Cons(d, NIL))));
END List4;

(* The i-th element of list p (0-based). *)
PROCEDURE Arg (p: Pair; i: INTEGER): Obj =
VAR cur: Obj;
BEGIN
  cur := p;
  WHILE i > 0 DO
    cur := NARROW(cur, Pair).cdr;
    i := i - 1;
  END;
  RETURN NARROW(cur, Pair).car;
END Arg;

PROCEDURE Lookup (env: Obj; id: INTEGER): Obj =
VAR e: Obj; entry: Pair;
BEGIN
  stats.lookups := stats.lookups + 1;
  e := env;
  WHILE e # NIL DO
    entry := NARROW(NARROW(e, Pair).car, Pair);
    IF NARROW(entry.car, Sym).id = id THEN
      RETURN entry.cdr;
    END;
    e := NARROW(e, Pair).cdr;
  END;
  RETURN NIL;
END Lookup;

PROCEDURE Bind (id: INTEGER; v: Obj; env: Obj): Obj =
BEGIN
  RETURN Cons(Cons(MkSym(id), v), env);
END Bind;

PROCEDURE NumVal (x: Obj): INTEGER =
BEGIN
  RETURN NARROW(x, Num).val;
END NumVal;

PROCEDURE Eval (x: Obj; env: Obj): Obj =
VAR p: Pair; headId: INTEGER; f, a: Obj; cl: Clos;
BEGIN
  stats.evals := stats.evals + 1;
  IF ISTYPE(x, Num) THEN RETURN x END;
  IF ISTYPE(x, Sym) THEN
    RETURN Lookup(env, NARROW(x, Sym).id);
  END;
  p := NARROW(x, Pair);
  IF ISTYPE(p.car, Sym) THEN
    headId := NARROW(p.car, Sym).id;
    IF headId = SIf THEN
      IF NumVal(Eval(Arg(p, 1), env)) # 0 THEN
        RETURN Eval(Arg(p, 2), env);
      ELSE
        RETURN Eval(Arg(p, 3), env);
      END;
    ELSIF headId = SLe THEN
      IF NumVal(Eval(Arg(p, 1), env)) <= NumVal(Eval(Arg(p, 2), env)) THEN
        RETURN MkNum(1);
      ELSE
        RETURN MkNum(0);
      END;
    ELSIF headId = SAdd THEN
      RETURN MkNum(NumVal(Eval(Arg(p, 1), env)) + NumVal(Eval(Arg(p, 2), env)));
    ELSIF headId = SSub THEN
      RETURN MkNum(NumVal(Eval(Arg(p, 1), env)) - NumVal(Eval(Arg(p, 2), env)));
    ELSIF headId = SMul THEN
      RETURN MkNum(NumVal(Eval(Arg(p, 1), env)) * NumVal(Eval(Arg(p, 2), env)));
    ELSIF headId = SLambda THEN
      cl := NEW(Clos);
      cl.param := NARROW(Arg(p, 1), Sym).id;
      cl.body := Arg(p, 2);
      cl.env := env;
      RETURN cl;
    END;
  END;
  (* application: (f arg) *)
  stats.applies := stats.applies + 1;
  f := Eval(p.car, env);
  a := Eval(Arg(p, 1), env);
  cl := NARROW(f, Clos);
  RETURN Eval(cl.body, Bind(cl.param, a, cl.env));
END Eval;

(* (lambda n (if (le n 2) 1 (add (fib (sub n 1)) (fib (sub n 2))))) *)
PROCEDURE FibBody (): Obj =
BEGIN
  RETURN List4(
    MkSym(SIf),
    List3(MkSym(SLe), MkSym(VN), MkNum(2)),
    MkNum(1),
    List3(
      MkSym(SAdd),
      List2(MkSym(VFib), List3(MkSym(SSub), MkSym(VN), MkNum(1))),
      List2(MkSym(VFib), List3(MkSym(SSub), MkSym(VN), MkNum(2)))));
END FibBody;

(* (lambda x (mul x x)) used under a driver loop *)
PROCEDURE SquareBody (): Obj =
BEGIN
  RETURN List3(MkSym(SMul), MkSym(VX), MkSym(VX));
END SquareBody;

PROCEDURE RunFib (n: INTEGER): INTEGER =
VAR entry: Pair; node: Pair; cl: Clos; r: Obj;
BEGIN
  (* letrec fib via mutation of its own env entry *)
  entry := NEW(Pair);
  entry.car := MkSym(VFib);
  entry.cdr := NIL;
  node := NEW(Pair);
  node.car := entry;
  node.cdr := NIL;
  cl := NEW(Clos);
  cl.param := VN;
  cl.body := FibBody();
  cl.env := node;
  entry.cdr := cl;
  r := Eval(List2(MkSym(VFib), MkNum(n)), node);
  RETURN NumVal(r);
END RunFib;

PROCEDURE RunSquares (k: INTEGER): INTEGER =
VAR cl: Clos; acc: INTEGER; r: Obj;
BEGIN
  cl := NEW(Clos);
  cl.param := VX;
  cl.body := SquareBody();
  cl.env := NIL;
  acc := 0;
  FOR i := 1 TO k DO
    r := Eval(cl.body, Bind(VX, MkNum(i), NIL));
    acc := (acc + NumVal(r)) MOD 1000003;
  END;
  RETURN acc;
END RunSquares;

(* ---- the reader: parse textual s-expressions --------------------- *)

TYPE
  SymTab = OBJECT name: TEXT; id: INTEGER; next: SymTab; END;
  Reader = OBJECT
    src: TEXT;
    pos, len: INTEGER;
    syms: SymTab;
    nextId: INTEGER;
  END;

PROCEDURE TextEq (a, b: TEXT): BOOLEAN =
BEGIN
  IF TEXTLEN(a) # TEXTLEN(b) THEN RETURN FALSE END;
  FOR i := 0 TO TEXTLEN(a) - 1 DO
    IF TEXTCHAR(a, i) # TEXTCHAR(b, i) THEN RETURN FALSE END;
  END;
  RETURN TRUE;
END TextEq;

PROCEDURE NewReader (src: TEXT): Reader =
VAR r: Reader;
BEGIN
  r := NEW(Reader);
  r.src := src;
  r.pos := 0;
  r.len := TEXTLEN(src);
  r.nextId := 500;
  (* pre-seed the special forms and known variables *)
  Seed(r, "if", SIf);
  Seed(r, "le", SLe);
  Seed(r, "add", SAdd);
  Seed(r, "sub", SSub);
  Seed(r, "mul", SMul);
  Seed(r, "lambda", SLambda);
  Seed(r, "fib", VFib);
  Seed(r, "n", VN);
  Seed(r, "tak", VTak);
  Seed(r, "x", VX);
  RETURN r;
END NewReader;

PROCEDURE Seed (r: Reader; name: TEXT; id: INTEGER) =
VAR e: SymTab;
BEGIN
  e := NEW(SymTab);
  e.name := name;
  e.id := id;
  e.next := r.syms;
  r.syms := e;
END Seed;

PROCEDURE Intern (r: Reader; name: TEXT): INTEGER =
VAR e: SymTab;
BEGIN
  e := r.syms;
  WHILE e # NIL DO
    IF TextEq(e.name, name) THEN RETURN e.id END;
    e := e.next;
  END;
  Seed(r, name, r.nextId);
  r.nextId := r.nextId + 1;
  RETURN r.nextId - 1;
END Intern;

PROCEDURE Peek (r: Reader): CHAR =
BEGIN
  IF r.pos >= r.len THEN RETURN '$' END;
  RETURN TEXTCHAR(r.src, r.pos);
END Peek;

PROCEDURE SkipSpaces (r: Reader) =
BEGIN
  WHILE (r.pos < r.len) AND (Peek(r) = ' ') DO
    r.pos := r.pos + 1;
  END;
END SkipSpaces;

PROCEDURE IsDigit (c: CHAR): BOOLEAN =
BEGIN
  RETURN (c >= '0') AND (c <= '9');
END IsDigit;

PROCEDURE IsLetter (c: CHAR): BOOLEAN =
BEGIN
  RETURN (c >= 'a') AND (c <= 'z');
END IsLetter;

(* Reads one s-expression. *)
PROCEDURE ReadObj (r: Reader): Obj =
VAR head, tail, node: Pair; item: Obj; v: INTEGER; word: TEXT;
BEGIN
  SkipSpaces(r);
  IF Peek(r) = '(' THEN
    r.pos := r.pos + 1;
    head := NIL;
    tail := NIL;
    LOOP
      SkipSpaces(r);
      IF Peek(r) = ')' THEN
        r.pos := r.pos + 1;
        EXIT;
      END;
      item := ReadObj(r);
      node := NEW(Pair);
      node.car := item;
      IF tail = NIL THEN head := node ELSE tail.cdr := node END;
      tail := node;
    END;
    RETURN head;
  ELSIF IsDigit(Peek(r)) THEN
    v := 0;
    WHILE IsDigit(Peek(r)) DO
      v := v * 10 + ORD(Peek(r)) - ORD('0');
      r.pos := r.pos + 1;
    END;
    RETURN MkNum(v);
  ELSE
    word := "";
    WHILE IsLetter(Peek(r)) DO
      word := word & CTOT(Peek(r));
      r.pos := r.pos + 1;
    END;
    RETURN MkSym(Intern(r, word));
  END;
END ReadObj;

(* Parses the fib program from source text, builds the recursive
   environment, and evaluates (fib n). *)
PROCEDURE RunFibParsed (n: INTEGER): INTEGER =
VAR
  r: Reader; bodySrc, callSrc: TEXT;
  entry, node: Pair; cl: Clos; res: Obj; lam: Pair;
BEGIN
  bodySrc := "(lambda n (if (le n 2) 1 (add (fib (sub n 1)) (fib (sub n 2)))))";
  callSrc := "(fib " & ITOT(n) & ")";
  r := NewReader(bodySrc);
  lam := NARROW(ReadObj(r), Pair);
  entry := NEW(Pair);
  entry.car := MkSym(VFib);
  entry.cdr := NIL;
  node := NEW(Pair);
  node.car := entry;
  node.cdr := NIL;
  cl := NEW(Clos);
  cl.param := NARROW(Arg(lam, 1), Sym).id;
  cl.body := Arg(lam, 2);
  cl.env := node;
  entry.cdr := cl;
  r := NewReader(callSrc);
  res := Eval(ReadObj(r), node);
  RETURN NumVal(res);
END RunFibParsed;

BEGIN
  stats := NEW(Stats);
  check := 0;
  FOR pass := 1 TO Scale DO
    check := check + RunFib(11 + pass MOD 2);
    check := (check + RunSquares(60)) MOD 1000000007;
    (* the parsed program must agree with the constructed one *)
    IF RunFibParsed(10) # RunFib(10) THEN
      PRINT("READER MISMATCH ");
    END;
  END;
  PRINT("slisp check=");
  PRINTI(check);
  PRINT(" evals=");
  PRINTI(stats.evals);
END SLisp.
