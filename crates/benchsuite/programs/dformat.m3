(* dformat — a document formatter over a tree of sections, paragraphs,
   and rules, after the paper's `dformat` benchmark. The node hierarchy
   uses method dispatch (render), which the Minv+Inlining configuration
   of Figure 11 can resolve where the tree is monomorphic. *)
MODULE DFormat;

CONST
  Scale = 4;
  PageWidth = 30;

TYPE
  Node = OBJECT
    next: Node;        (* sibling chain *)
    METHODS
      width (): INTEGER := NodeWidth;
      render (indent: INTEGER): INTEGER := NodeRender;
  END;
  Text = Node OBJECT
    len: INTEGER;
  OVERRIDES
    width := TextWidth;
    render := TextRender;
  END;
  Rule = Node OBJECT
    thickness: INTEGER;
  OVERRIDES
    width := RuleWidth;
    render := RuleRender;
  END;
  Section = Node OBJECT
    first: Node;
    title: INTEGER;
  OVERRIDES
    width := SectionWidth;
    render := SectionRender;
  END;
  Counter = OBJECT emitted, maxw: INTEGER; END;

VAR
  seed: INTEGER;
  out: Counter;
  root: Section;
  check: INTEGER;

PROCEDURE Rand (): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN seed;
END Rand;

PROCEDURE NodeWidth (self: Node): INTEGER =
BEGIN
  RETURN 0;
END NodeWidth;

PROCEDURE NodeRender (self: Node; indent: INTEGER): INTEGER =
BEGIN
  RETURN indent;
END NodeRender;

PROCEDURE TextWidth (self: Text): INTEGER =
BEGIN
  RETURN self.len;
END TextWidth;

PROCEDURE TextRender (self: Text; indent: INTEGER): INTEGER =
VAR lines: INTEGER;
BEGIN
  lines := (indent + self.len) DIV PageWidth + 1;
  out.emitted := out.emitted + self.len;
  IF self.len > out.maxw THEN out.maxw := self.len END;
  RETURN lines;
END TextRender;

PROCEDURE RuleWidth (self: Rule): INTEGER =
BEGIN
  RETURN PageWidth - self.thickness;
END RuleWidth;

PROCEDURE RuleRender (self: Rule; indent: INTEGER): INTEGER =
BEGIN
  out.emitted := out.emitted + PageWidth - indent;
  RETURN self.thickness;
END RuleRender;

PROCEDURE SectionWidth (self: Section): INTEGER =
VAR n: Node; w, best: INTEGER;
BEGIN
  best := 0;
  n := self.first;
  WHILE n # NIL DO
    w := n.width();
    IF w > best THEN best := w END;
    n := n.next;
  END;
  RETURN best;
END SectionWidth;

PROCEDURE SectionRender (self: Section; indent: INTEGER): INTEGER =
VAR n: Node; lines: INTEGER;
BEGIN
  lines := 1;
  out.emitted := out.emitted + self.title;
  n := self.first;
  WHILE n # NIL DO
    lines := lines + n.render(indent + 2);
    n := n.next;
  END;
  RETURN lines;
END SectionRender;

PROCEDURE BuildSection (depth: INTEGER): Section =
VAR s: Section; t: Text; r: Rule; sub: Section; tail, n: Node; kids: INTEGER;
BEGIN
  s := NEW(Section);
  s.title := 1 + Rand() MOD 9;
  tail := NIL;
  kids := 3 + Rand() MOD 4;
  FOR i := 1 TO kids DO
    IF (depth > 0) AND (Rand() MOD 3 = 0) THEN
      sub := BuildSection(depth - 1);
      n := sub;
    ELSIF Rand() MOD 4 = 0 THEN
      r := NEW(Rule);
      r.thickness := 1 + Rand() MOD 2;
      n := r;
    ELSE
      t := NEW(Text);
      t.len := 2 + Rand() MOD 17;
      n := t;
    END;
    IF tail = NIL THEN s.first := n ELSE tail.next := n END;
    tail := n;
  END;
  RETURN s;
END BuildSection;

BEGIN
  seed := 4242;
  check := 0;
  out := NEW(Counter);
  FOR pass := 1 TO Scale DO
    root := BuildSection(4);
    check := check + root.width();
    FOR rep := 1 TO 6 DO
      check := (check + root.render(rep MOD 3)) MOD 100000007;
    END;
  END;
  PRINT("dformat check=");
  PRINTI(check);
  PRINT(" emitted=");
  PRINTI(out.emitted);
END DFormat.
