(* format — a text formatter in the spirit of the paper's `format`
   benchmark (Liskov & Guttag): builds a document of words, breaks it
   into lines with a greedy algorithm, and measures the result.
   Linked lists of objects give RLE loop-invariant header loads. *)
MODULE Format;

CONST
  Scale = 4;
  BaseWidth = 24;

TYPE
  Word = OBJECT
    text: TEXT;
    len: INTEGER;
    next: Word;
  END;
  Line = OBJECT
    nwords: INTEGER;
    width: INTEGER;
    next: Line;
  END;
  Doc = OBJECT
    words: Word;
    lines: Line;
    nwords: INTEGER;
  END;

VAR
  seed: INTEGER;
  doc: Doc;
  totalLines, checksum: INTEGER;

PROCEDURE Rand (): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN seed;
END Rand;

PROCEDURE MakeWord (n: INTEGER): Word =
VAR w: Word;
BEGIN
  w := NEW(Word);
  w.len := 1 + n MOD 9;
  w.text := "";
  FOR i := 1 TO w.len DO
    w.text := w.text & CTOT(CHR(97 + (n + i) MOD 26));
  END;
  w.next := NIL;
  RETURN w;
END MakeWord;

PROCEDURE BuildDoc (n: INTEGER): Doc =
VAR d: Doc; w, tail: Word;
BEGIN
  d := NEW(Doc);
  d.nwords := n;
  tail := NIL;
  FOR i := 1 TO n DO
    w := MakeWord(Rand());
    IF tail = NIL THEN d.words := w ELSE tail.next := w END;
    tail := w;
  END;
  RETURN d;
END BuildDoc;

PROCEDURE BreakLines (d: Doc; width: INTEGER): INTEGER =
VAR w: Word; cur: Line; count: INTEGER;
BEGIN
  count := 0;
  cur := NIL;
  w := d.words;
  WHILE w # NIL DO
    IF (cur = NIL) OR (cur.width + 1 + w.len > width) THEN
      cur := NEW(Line);
      cur.width := w.len;
      cur.nwords := 1;
      cur.next := d.lines;
      d.lines := cur;
      count := count + 1;
    ELSE
      cur.width := cur.width + 1 + w.len;
      cur.nwords := cur.nwords + 1;
    END;
    w := w.next;
  END;
  RETURN count;
END BreakLines;

PROCEDURE Measure (d: Doc): INTEGER =
VAR l: Line; sum: INTEGER;
BEGIN
  sum := 0;
  l := d.lines;
  WHILE l # NIL DO
    sum := sum + l.width * l.nwords;
    l := l.next;
  END;
  RETURN sum;
END Measure;

PROCEDURE LongestWord (d: Doc): INTEGER =
VAR w: Word; best: INTEGER;
BEGIN
  best := 0;
  w := d.words;
  WHILE w # NIL DO
    (* d.nwords is loop invariant: RLE hoists it. *)
    IF w.len * d.nwords > best * d.nwords THEN
      best := w.len;
    END;
    w := w.next;
  END;
  RETURN best;
END LongestWord;

BEGIN
  seed := 12345;
  checksum := 0;
  totalLines := 0;
  FOR pass := 1 TO Scale DO
    doc := BuildDoc(250);
    totalLines := totalLines + BreakLines(doc, BaseWidth + pass MOD 7);
    checksum := checksum + Measure(doc) + LongestWord(doc);
  END;
  PRINT("format lines=");
  PRINTI(totalLines);
  PRINT(" check=");
  PRINTI(checksum);
END Format.
