(* m3cg — a code generator, after the paper's `m3cg` benchmark (the
   Modula-3 v3.5.1 code generator plus extensions; the largest program
   in the suite). A front half builds a linked intermediate
   representation with an object hierarchy of operations; the back half
   runs linear-scan register assignment over a fixed register file,
   peephole-rewrites redundant moves, and "emits" instruction bytes. *)
MODULE M3CG;

CONST
  Scale = 4;
  NRegs = 8;
  NTemps = 48;
  BlocksPerPass = 14;

TYPE
  Op = OBJECT
    next: Op;
    temp: INTEGER;           (* destination temporary *)
    reg: INTEGER;            (* assigned register, -1 if spilled *)
    METHODS
      size (): INTEGER := OpSize;
  END;
  LoadOp = Op OBJECT
    addrTemp: INTEGER;
  OVERRIDES
    size := LoadSize;
  END;
  StoreOp = Op OBJECT
    addrTemp, valTemp: INTEGER;
  OVERRIDES
    size := StoreSize;
  END;
  ArithOp = Op OBJECT
    kind: INTEGER;           (* 0 add, 1 sub, 2 mul *)
    lhsTemp, rhsTemp: INTEGER;
  OVERRIDES
    size := ArithSize;
  END;
  MoveOp = Op OBJECT
    srcTemp: INTEGER;
  OVERRIDES
    size := MoveSize;
  END;
  BlockIR = OBJECT
    first, last: Op;
    nops: INTEGER;
    next: BlockIR;
  END;
  Unit = OBJECT
    blocks: BlockIR;
    nblocks: INTEGER;
  END;
  IntArr = ARRAY OF INTEGER;
  Allocator = OBJECT
    owner: ARRAY [0..7] OF INTEGER;   (* temp held by each register *)
    lru: ARRAY [0..7] OF INTEGER;
    clock: INTEGER;
    spills, hits: INTEGER;
  END;
  Emitter = OBJECT
    bytes: INTEGER;
    moves, removed: INTEGER;
  END;

VAR
  seed, check: INTEGER;
  unit: Unit;
  alloc: Allocator;
  emit: Emitter;

PROCEDURE Rand (): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN seed;
END Rand;

PROCEDURE OpSize (self: Op): INTEGER =
BEGIN
  RETURN 4;
END OpSize;

PROCEDURE LoadSize (self: LoadOp): INTEGER =
BEGIN
  IF self.addrTemp > 32 THEN RETURN 8 END;
  RETURN 4;
END LoadSize;

PROCEDURE StoreSize (self: StoreOp): INTEGER =
BEGIN
  IF self.addrTemp + self.valTemp > 64 THEN RETURN 8 END;
  RETURN 4;
END StoreSize;

PROCEDURE ArithSize (self: ArithOp): INTEGER =
BEGIN
  IF self.kind = 2 THEN RETURN 8 END;
  RETURN 4;
END ArithSize;

PROCEDURE MoveSize (self: MoveOp): INTEGER =
BEGIN
  RETURN 2 + self.srcTemp MOD 2;
END MoveSize;

PROCEDURE Append (b: BlockIR; o: Op) =
BEGIN
  IF b.last = NIL THEN
    b.first := o;
  ELSE
    b.last.next := o;
  END;
  b.last := o;
  b.nops := b.nops + 1;
END Append;

PROCEDURE GenBlock (): BlockIR =
VAR b: BlockIR; l: LoadOp; st: StoreOp; a: ArithOp; m: MoveOp; n: INTEGER;
BEGIN
  b := NEW(BlockIR);
  b.nops := 0;
  n := 8 + Rand() MOD 16;
  FOR i := 1 TO n DO
    CASEKIND(b, Rand() MOD 4);
  END;
  (* a trailing store keeps the block live *)
  st := NEW(StoreOp);
  st.temp := Rand() MOD NTemps;
  st.addrTemp := Rand() MOD NTemps;
  st.valTemp := Rand() MOD NTemps;
  Append(b, st);
  RETURN b;
END GenBlock;

PROCEDURE CASEKIND (b: BlockIR; kind: INTEGER) =
VAR l: LoadOp; st: StoreOp; a: ArithOp; m: MoveOp;
BEGIN
  IF kind = 0 THEN
    l := NEW(LoadOp);
    l.temp := Rand() MOD NTemps;
    l.addrTemp := Rand() MOD NTemps;
    Append(b, l);
  ELSIF kind = 1 THEN
    a := NEW(ArithOp);
    a.temp := Rand() MOD NTemps;
    a.kind := Rand() MOD 3;
    a.lhsTemp := Rand() MOD NTemps;
    a.rhsTemp := Rand() MOD NTemps;
    Append(b, a);
  ELSIF kind = 2 THEN
    m := NEW(MoveOp);
    m.temp := Rand() MOD NTemps;
    m.srcTemp := Rand() MOD NTemps;
    Append(b, m);
  ELSE
    st := NEW(StoreOp);
    st.temp := Rand() MOD NTemps;
    st.addrTemp := Rand() MOD NTemps;
    st.valTemp := Rand() MOD NTemps;
    Append(b, st);
  END;
END CASEKIND;

PROCEDURE BuildUnit (): Unit =
VAR u: Unit; b: BlockIR;
BEGIN
  u := NEW(Unit);
  u.nblocks := 0;
  FOR i := 1 TO BlocksPerPass DO
    b := GenBlock();
    b.next := u.blocks;
    u.blocks := b;
    u.nblocks := u.nblocks + 1;
  END;
  RETURN u;
END BuildUnit;

PROCEDURE ResetAlloc (al: Allocator) =
BEGIN
  FOR r := 0 TO NRegs - 1 DO
    al.owner[r] := -1;
    al.lru[r] := 0;
  END;
  al.clock := 0;
END ResetAlloc;

(* Returns the register holding temp, assigning (and possibly spilling)
   if needed. *)
PROCEDURE GetReg (al: Allocator; temp: INTEGER): INTEGER =
VAR victim, oldest: INTEGER;
BEGIN
  al.clock := al.clock + 1;
  FOR r := 0 TO NRegs - 1 DO
    IF al.owner[r] = temp THEN
      al.hits := al.hits + 1;
      al.lru[r] := al.clock;
      RETURN r;
    END;
  END;
  victim := 0;
  oldest := al.lru[0];
  FOR r := 1 TO NRegs - 1 DO
    IF al.lru[r] < oldest THEN
      oldest := al.lru[r];
      victim := r;
    END;
  END;
  IF al.owner[victim] >= 0 THEN
    al.spills := al.spills + 1;
  END;
  al.owner[victim] := temp;
  al.lru[victim] := al.clock;
  RETURN victim;
END GetReg;

PROCEDURE AssignBlock (al: Allocator; b: BlockIR) =
VAR o: Op; a: ArithOp; st: StoreOp; l: LoadOp; m: MoveOp;
BEGIN
  o := b.first;
  WHILE o # NIL DO
    IF ISTYPE(o, ArithOp) THEN
      a := NARROW(o, ArithOp);
      EVAL GetReg(al, a.lhsTemp);
      EVAL GetReg(al, a.rhsTemp);
    ELSIF ISTYPE(o, StoreOp) THEN
      st := NARROW(o, StoreOp);
      EVAL GetReg(al, st.addrTemp);
      EVAL GetReg(al, st.valTemp);
    ELSIF ISTYPE(o, LoadOp) THEN
      l := NARROW(o, LoadOp);
      EVAL GetReg(al, l.addrTemp);
    ELSE
      m := NARROW(o, MoveOp);
      EVAL GetReg(al, m.srcTemp);
    END;
    o.reg := GetReg(al, o.temp);
    o := o.next;
  END;
END AssignBlock;

(* Removes moves whose source and destination got the same register. *)
PROCEDURE Peephole (em: Emitter; b: BlockIR) =
VAR o, prev: Op; m: MoveOp;
BEGIN
  prev := NIL;
  o := b.first;
  WHILE o # NIL DO
    IF ISTYPE(o, MoveOp) THEN
      em.moves := em.moves + 1;
      m := NARROW(o, MoveOp);
      IF m.srcTemp = m.temp THEN
        em.removed := em.removed + 1;
        IF prev = NIL THEN
          b.first := o.next;
        ELSE
          prev.next := o.next;
        END;
        b.nops := b.nops - 1;
      ELSE
        prev := o;
      END;
    ELSE
      prev := o;
    END;
    o := o.next;
  END;
END Peephole;

PROCEDURE EmitBlock (em: Emitter; b: BlockIR) =
VAR o: Op;
BEGIN
  o := b.first;
  WHILE o # NIL DO
    em.bytes := em.bytes + o.size();
    o := o.next;
  END;
END EmitBlock;

PROCEDURE Compile (u: Unit; al: Allocator; em: Emitter): INTEGER =
VAR b: BlockIR;
BEGIN
  b := u.blocks;
  WHILE b # NIL DO
    ResetAlloc(al);
    AssignBlock(al, b);
    Peephole(em, b);
    EmitBlock(em, b);
    b := b.next;
  END;
  RETURN em.bytes + al.spills * 3 + al.hits;
END Compile;

BEGIN
  seed := 31337;
  check := 0;
  alloc := NEW(Allocator);
  alloc.spills := 0;
  alloc.hits := 0;
  emit := NEW(Emitter);
  FOR pass := 1 TO Scale DO
    unit := BuildUnit();
    check := (check + Compile(unit, alloc, emit)) MOD 1000000007;
  END;
  PRINT("m3cg check=");
  PRINTI(check);
  PRINT(" spills=");
  PRINTI(alloc.spills);
  PRINT(" removed=");
  PRINTI(emit.removed);
END M3CG.
