(* postcard — a stand-in for the paper's `postcard` benchmark (a
   graphical mail reader). Like the original it is evaluated statically
   only: folders, messages, headers, filters, and view widgets give the
   analyses a realistic interactive-application type structure. *)
MODULE Postcard;

TYPE
  Header = OBJECT
    sender, subjectLen, date: INTEGER;
    next: Header;
  END;
  Body = OBJECT
    paragraphs: Paragraph;
    bytes: INTEGER;
  END;
  Paragraph = OBJECT
    len: INTEGER;
    next: Paragraph;
  END;
  MessageM = OBJECT
    hdr: Header;
    body: Body;
    flags: INTEGER;
    next: MessageM;
  END;
  Folder = OBJECT
    name: INTEGER;
    msgs: MessageM;
    count, unread: INTEGER;
    next: Folder;
  END;
  Mailbox = OBJECT
    folders: Folder;
    total: INTEGER;
  END;
  Filter = OBJECT
    matched: INTEGER;
    METHODS
      accept (m: MessageM): BOOLEAN := FilterAccept;
  END;
  SenderFilter = Filter OBJECT
    wanted: INTEGER;
  OVERRIDES
    accept := SenderAccept;
  END;
  SizeFilter = Filter OBJECT
    minBytes: INTEGER;
  OVERRIDES
    accept := SizeAccept;
  END;
  Widget = OBJECT
    x, y, w, h: INTEGER;
    next: Widget;
    METHODS
      layout (width: INTEGER): INTEGER := WidgetLayout;
  END;
  ListView = Widget OBJECT
    rows: INTEGER;
  OVERRIDES
    layout := ListLayout;
  END;
  TextView = Widget OBJECT
    scroll: INTEGER;
  OVERRIDES
    layout := TextLayout;
  END;

VAR
  box: Mailbox;
  ui: Widget;
  check: INTEGER;

PROCEDURE FilterAccept (self: Filter; m: MessageM): BOOLEAN =
BEGIN
  self.matched := self.matched + 1;
  RETURN m.flags MOD 2 = 0;
END FilterAccept;

PROCEDURE SenderAccept (self: SenderFilter; m: MessageM): BOOLEAN =
BEGIN
  IF m.hdr.sender = self.wanted THEN
    self.matched := self.matched + 1;
    RETURN TRUE;
  END;
  RETURN FALSE;
END SenderAccept;

PROCEDURE SizeAccept (self: SizeFilter; m: MessageM): BOOLEAN =
BEGIN
  RETURN m.body.bytes >= self.minBytes;
END SizeAccept;

PROCEDURE WidgetLayout (self: Widget; width: INTEGER): INTEGER =
BEGIN
  self.w := width;
  self.h := 1;
  RETURN self.h;
END WidgetLayout;

PROCEDURE ListLayout (self: ListView; width: INTEGER): INTEGER =
BEGIN
  self.w := width;
  self.h := self.rows * 2;
  RETURN self.h;
END ListLayout;

PROCEDURE TextLayout (self: TextView; width: INTEGER): INTEGER =
BEGIN
  self.w := width - 2;
  self.h := 10 + self.scroll;
  RETURN self.h;
END TextLayout;

PROCEDURE MkMessage (sender, nbytes: INTEGER): MessageM =
VAR m: MessageM; p: Paragraph;
BEGIN
  m := NEW(MessageM);
  m.hdr := NEW(Header);
  m.hdr.sender := sender;
  m.hdr.subjectLen := 8 + sender MOD 9;
  m.body := NEW(Body);
  m.body.bytes := nbytes;
  p := NEW(Paragraph);
  p.len := nbytes DIV 2;
  m.body.paragraphs := p;
  RETURN m;
END MkMessage;

PROCEDURE AddMessage (f: Folder; m: MessageM) =
BEGIN
  m.next := f.msgs;
  f.msgs := m;
  f.count := f.count + 1;
  IF m.flags MOD 2 = 0 THEN
    f.unread := f.unread + 1;
  END;
END AddMessage;

PROCEDURE CountMatches (f: Folder; flt: Filter): INTEGER =
VAR m: MessageM; n: INTEGER;
BEGIN
  n := 0;
  m := f.msgs;
  WHILE m # NIL DO
    IF flt.accept(m) THEN n := n + 1 END;
    m := m.next;
  END;
  RETURN n;
END CountMatches;

PROCEDURE LayoutAll (first: Widget; width: INTEGER): INTEGER =
VAR w: Widget; total: INTEGER;
BEGIN
  total := 0;
  w := first;
  WHILE w # NIL DO
    total := total + w.layout(width);
    w := w.next;
  END;
  RETURN total;
END LayoutAll;

BEGIN
  check := 0;
  box := NEW(Mailbox);
  WITH inbox = NEW(Folder) DO
    inbox.name := 1;
    box.folders := inbox;
    FOR i := 1 TO 10 DO
      AddMessage(inbox, MkMessage(i MOD 3, 100 + i * 7));
    END;
    WITH sf = NEW(SenderFilter) DO
      sf.wanted := 1;
      check := check + CountMatches(inbox, sf);
    END;
    WITH zf = NEW(SizeFilter) DO
      zf.minBytes := 130;
      check := check + CountMatches(inbox, zf);
    END;
  END;
  WITH lv = NEW(ListView), tv = NEW(TextView) DO
    lv.rows := 10;
    lv.next := tv;
    ui := lv;
    check := check + LayoutAll(ui, 80);
  END;
  PRINT("postcard check=");
  PRINTI(check);
END Postcard.
