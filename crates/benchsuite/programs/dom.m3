(* dom — a stand-in for the paper's `dom` benchmark (Nayeri et al.'s
   system for building distributed applications). Like the original it
   is evaluated statically only: the type structure — proxies, stubs,
   transports, dispatchers with deep object hierarchies — is what the
   alias analyses see. The main body only touches representative paths. *)
MODULE Dom;

TYPE
  ObjId = OBJECT
    node, seq: INTEGER;
  END;
  Message = OBJECT
    target: ObjId;
    method: INTEGER;
    args: Message;          (* chained argument frames *)
    next: Message;
  END;
  Transport = OBJECT
    queued: Message;
    sent, dropped: INTEGER;
    METHODS
      send (m: Message): INTEGER := TransportSend;
  END;
  TcpTransport = Transport OBJECT
    port: INTEGER;
  OVERRIDES
    send := TcpSend;
  END;
  LocalTransport = Transport OBJECT
    deliveries: INTEGER;
  OVERRIDES
    send := LocalSend;
  END;
  Dispatcher = OBJECT
    transport: Transport;
    table: DispatchEntry;
    served: INTEGER;
    METHODS
      dispatch (m: Message): INTEGER := Dispatch;
  END;
  DispatchEntry = OBJECT
    method: INTEGER;
    handler: Handler;
    next: DispatchEntry;
  END;
  Handler = OBJECT
    calls: INTEGER;
    METHODS
      invoke (m: Message): INTEGER := HandlerInvoke;
  END;
  EchoHandler = Handler OBJECT
    echoed: INTEGER;
  OVERRIDES
    invoke := EchoInvoke;
  END;
  CounterHandler = Handler OBJECT
    counter: INTEGER;
  OVERRIDES
    invoke := CounterInvoke;
  END;
  Proxy = OBJECT
    remote: ObjId;
    via: Transport;
    calls: INTEGER;
  END;
  Registry = OBJECT
    proxies: ProxyNode;
    size: INTEGER;
  END;
  ProxyNode = OBJECT
    proxy: Proxy;
    next: ProxyNode;
  END;

VAR
  disp: Dispatcher;
  reg: Registry;
  check: INTEGER;

PROCEDURE TransportSend (self: Transport; m: Message): INTEGER =
BEGIN
  m.next := self.queued;
  self.queued := m;
  self.sent := self.sent + 1;
  RETURN self.sent;
END TransportSend;

PROCEDURE TcpSend (self: TcpTransport; m: Message): INTEGER =
BEGIN
  self.sent := self.sent + 1;
  RETURN self.port + m.method;
END TcpSend;

PROCEDURE LocalSend (self: LocalTransport; m: Message): INTEGER =
BEGIN
  self.deliveries := self.deliveries + 1;
  RETURN m.method;
END LocalSend;

PROCEDURE HandlerInvoke (self: Handler; m: Message): INTEGER =
BEGIN
  self.calls := self.calls + 1;
  RETURN m.method;
END HandlerInvoke;

PROCEDURE EchoInvoke (self: EchoHandler; m: Message): INTEGER =
BEGIN
  self.echoed := self.echoed + m.method;
  RETURN self.echoed;
END EchoInvoke;

PROCEDURE CounterInvoke (self: CounterHandler; m: Message): INTEGER =
BEGIN
  self.counter := self.counter + 1;
  RETURN self.counter;
END CounterInvoke;

PROCEDURE Dispatch (self: Dispatcher; m: Message): INTEGER =
VAR e: DispatchEntry;
BEGIN
  self.served := self.served + 1;
  e := self.table;
  WHILE e # NIL DO
    IF e.method = m.method THEN
      RETURN e.handler.invoke(m);
    END;
    e := e.next;
  END;
  RETURN self.transport.send(m);
END Dispatch;

PROCEDURE AddEntry (d: Dispatcher; method: INTEGER; h: Handler) =
VAR e: DispatchEntry;
BEGIN
  e := NEW(DispatchEntry);
  e.method := method;
  e.handler := h;
  e.next := d.table;
  d.table := e;
END AddEntry;

PROCEDURE RegisterProxy (r: Registry; p: Proxy) =
VAR n: ProxyNode;
BEGIN
  n := NEW(ProxyNode);
  n.proxy := p;
  n.next := r.proxies;
  r.proxies := n;
  r.size := r.size + 1;
END RegisterProxy;

PROCEDURE MkMessage (node, seq, method: INTEGER): Message =
VAR m: Message;
BEGIN
  m := NEW(Message);
  m.target := NEW(ObjId);
  m.target.node := node;
  m.target.seq := seq;
  m.method := method;
  RETURN m;
END MkMessage;

BEGIN
  check := 0;
  disp := NEW(Dispatcher);
  disp.transport := NEW(LocalTransport);
  AddEntry(disp, 1, NEW(EchoHandler));
  AddEntry(disp, 2, NEW(CounterHandler));
  reg := NEW(Registry);
  FOR i := 1 TO 8 DO
    WITH p = NEW(Proxy) DO
      p.remote := NEW(ObjId);
      p.remote.node := i;
      p.via := disp.transport;
      RegisterProxy(reg, p);
    END;
    check := check + disp.dispatch(MkMessage(i, i * 3, i MOD 4));
  END;
  PRINT("dom check=");
  PRINTI(check + reg.size);
END Dom.
