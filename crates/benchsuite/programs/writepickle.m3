(* write-pickle — builds an AST, serializes ("pickles") it into an open
   integer array, reads it back, and evaluates both copies; modeled on
   the paper's `write-pickle` benchmark (reads and writes an AST). Open
   arrays exercise the hidden dope-vector loads of the Encapsulation
   category. *)
MODULE WritePickle;

CONST
  Scale = 4;
  GenDepth = 8;
  BufCap = 4096;

TYPE
  Expr = OBJECT END;
  Num = Expr OBJECT val: INTEGER; END;
  Bin = Expr OBJECT op: INTEGER; l, r: Expr; END;
  IntArr = ARRAY OF INTEGER;
  Buf = OBJECT
    data: IntArr;
    pos: INTEGER;
  END;

VAR
  seed, check: INTEGER;
  e, e2: Expr;
  buf: Buf;

PROCEDURE Rand (): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN seed;
END Rand;

PROCEDURE Gen (depth: INTEGER): Expr =
VAR b: Bin; n: Num;
BEGIN
  IF depth <= 0 THEN
    n := NEW(Num);
    n.val := Rand() MOD 100;
    RETURN n;
  END;
  b := NEW(Bin);
  b.op := Rand() MOD 3;
  b.l := Gen(depth - 1);
  b.r := Gen(depth - 1 - Rand() MOD 2);
  RETURN b;
END Gen;

PROCEDURE Put (b: Buf; v: INTEGER) =
BEGIN
  b.data[b.pos] := v;
  b.pos := b.pos + 1;
END Put;

PROCEDURE Pickle (x: Expr; b: Buf) =
VAR bb: Bin;
BEGIN
  IF ISTYPE(x, Num) THEN
    Put(b, 0);
    Put(b, NARROW(x, Num).val);
  ELSE
    bb := NARROW(x, Bin);
    Put(b, 1 + bb.op);
    Pickle(bb.l, b);
    Pickle(bb.r, b);
  END;
END Pickle;

PROCEDURE Get (b: Buf): INTEGER =
VAR v: INTEGER;
BEGIN
  v := b.data[b.pos];
  b.pos := b.pos + 1;
  RETURN v;
END Get;

PROCEDURE Unpickle (b: Buf): Expr =
VAR tag: INTEGER; n: Num; bb: Bin;
BEGIN
  tag := Get(b);
  IF tag = 0 THEN
    n := NEW(Num);
    n.val := Get(b);
    RETURN n;
  END;
  bb := NEW(Bin);
  bb.op := tag - 1;
  bb.l := Unpickle(b);
  bb.r := Unpickle(b);
  RETURN bb;
END Unpickle;

PROCEDURE Eval (x: Expr): INTEGER =
VAR b: Bin; l, r: INTEGER;
BEGIN
  IF ISTYPE(x, Num) THEN
    RETURN NARROW(x, Num).val;
  END;
  b := NARROW(x, Bin);
  l := Eval(b.l);
  r := Eval(b.r);
  IF b.op = 0 THEN RETURN (l + r) MOD 10007 END;
  IF b.op = 1 THEN RETURN (l * r) MOD 10007 END;
  RETURN l - r;
END Eval;

PROCEDURE Size (x: Expr): INTEGER =
VAR b: Bin;
BEGIN
  IF ISTYPE(x, Num) THEN RETURN 1 END;
  b := NARROW(x, Bin);
  RETURN 1 + Size(b.l) + Size(b.r);
END Size;

BEGIN
  seed := 99;
  check := 0;
  FOR pass := 1 TO Scale DO
    e := Gen(GenDepth);
    buf := NEW(Buf);
    buf.data := NEW(IntArr, BufCap);
    buf.pos := 0;
    Pickle(e, buf);
    check := check + buf.pos;
    buf.pos := 0;
    e2 := Unpickle(buf);
    check := (check + Eval(e) + Eval(e2) + Size(e2)) MOD 1000000;
    IF Eval(e) # Eval(e2) THEN
      PRINT("PICKLE MISMATCH ");
    END;
  END;
  PRINT("write-pickle check=");
  PRINTI(check);
END WritePickle.
