//! Runtime values of the interpreter.

use mini_m3::check::GlobalId;
use mini_m3::types::{TypeId, TypeKind, TypeTable};
use std::sync::Arc;
use tbaa_ir::path::VarId;

/// Identifier of a heap cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HeapId(pub u32);

/// A first-class location, produced by taking an address (VAR actuals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// A slot in a stack frame, identified by absolute frame index.
    Frame {
        /// Index into the interpreter's frame stack.
        frame: u32,
        /// The variable within the frame.
        var: VarId,
        /// Slot offset within the variable's storage.
        offset: u32,
    },
    /// A slot in a global's storage.
    Global {
        /// The global.
        global: GlobalId,
        /// Slot offset within the global's storage.
        offset: u32,
    },
    /// A slot in a heap cell.
    Heap {
        /// The cell.
        cell: HeapId,
        /// Slot index within the cell.
        slot: u32,
    },
}

/// A runtime value. One value occupies one slot.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// INTEGER.
    Int(i64),
    /// BOOLEAN.
    Bool(bool),
    /// CHAR.
    Char(char),
    /// TEXT (immutable, shared).
    Text(Arc<str>),
    /// NIL.
    Nil,
    /// A reference to a heap cell (object, REF cell, or open array).
    Ref(HeapId),
    /// A location (VAR parameter).
    Loc(Location),
}

impl Value {
    /// The default (zero) value for a type, used to initialize storage.
    pub fn zero_of(types: &TypeTable, ty: TypeId) -> Value {
        match types.kind(ty) {
            TypeKind::Integer => Value::Int(0),
            TypeKind::Boolean => Value::Bool(false),
            TypeKind::Char => Value::Char('\0'),
            TypeKind::Text => Value::Text(Arc::from("")),
            _ => Value::Nil,
        }
    }

    /// Integer accessor.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an integer (a type-checker bug, not a
    /// user error).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected INTEGER, got {other:?}"),
        }
    }

    /// Boolean accessor. See [`Value::as_int`] on panics.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected BOOLEAN, got {other:?}"),
        }
    }

    /// Char accessor. See [`Value::as_int`] on panics.
    pub fn as_char(&self) -> char {
        match self {
            Value::Char(v) => *v,
            other => panic!("expected CHAR, got {other:?}"),
        }
    }

    /// Text accessor. See [`Value::as_int`] on panics.
    pub fn as_text(&self) -> Arc<str> {
        match self {
            Value::Text(v) => v.clone(),
            other => panic!("expected TEXT, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_values() {
        let types = TypeTable::new();
        assert_eq!(Value::zero_of(&types, types.integer()), Value::Int(0));
        assert_eq!(Value::zero_of(&types, types.boolean()), Value::Bool(false));
        assert_eq!(Value::zero_of(&types, types.null()), Value::Nil);
    }

    #[test]
    fn equality_semantics() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert_ne!(Value::Int(3), Value::Int(4));
        assert_eq!(Value::Text(Arc::from("a")), Value::Text(Arc::from("a")));
        assert_eq!(Value::Ref(HeapId(1)), Value::Ref(HeapId(1)));
        assert_ne!(Value::Ref(HeapId(1)), Value::Nil);
    }
}
