//! # tbaa-sim — execution substrate for the TBAA evaluation
//!
//! The paper's dynamic numbers come from a validated Alpha 21064
//! simulator and the ATOM binary-instrumentation tool. This crate
//! substitutes both with components built on the `tbaa-ir` interpreter:
//!
//! * [`interp`] — executes lowered programs, counting instructions, heap
//!   loads, and other (stack/global) loads — the columns of Table 4 —
//!   while streaming every memory reference to a [`interp::MemHook`];
//! * [`cache`] + [`machine`] — a 32 KB direct-mapped data cache and a
//!   dual-issue-flavoured cycle model (§3.4.2) for the simulated
//!   execution times of Figures 8, 11, and 12;
//! * [`trace`] — the ATOM-equivalent: records every load's address and
//!   value and applies the paper's redundancy definition (§3.5);
//! * [`classify`] — splits the redundancy remaining after RLE into the
//!   paper's five categories (Figure 10) using shadow analysis passes.
//!
//! ## Example
//!
//! ```
//! use tbaa_sim::interp::{run, NullHook, RunConfig};
//!
//! let prog = tbaa_ir::compile_to_ir(
//!     "MODULE M;
//!      VAR s: INTEGER;
//!      BEGIN FOR i := 1 TO 5 DO s := s + i END; PRINTI(s) END M.")?;
//! let outcome = run(&prog, &mut NullHook, RunConfig::default())
//!     .map_err(|e| e.to_string())?;
//! assert_eq!(outcome.output, "15");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod classify;
pub mod heap;
pub mod interp;
pub mod machine;
pub mod trace;
pub mod value;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use classify::{classify_remaining, Breakdown, LimitResult};
pub use interp::{run, ExecCounts, MemHook, NullHook, RunConfig, RunOutcome, RuntimeError};
pub use machine::{cycles, simulate, CacheHook};
pub use trace::RedundancyTrace;
