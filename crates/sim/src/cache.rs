//! A set-associative data cache, standing in for the paper's simulation
//! environment (§3.4.2). The authors simulated an Alpha 21064 but with a
//! 32 KB primary data cache instead of 8 KB, *"to eliminate variations
//! due to conflict misses that we observed in an 8K direct mapped
//! cache"*. Our heap/stack/global addresses are synthetic, which makes a
//! pure direct-mapped cache chaotically sensitive to layout, so the
//! default here applies the same medicine in a different dose: the same
//! 32 KB, 32-byte lines, but 2-way set associative with LRU replacement.
//! Write-through, no write-allocate. A direct-mapped geometry is one
//! configuration away for ablations.

/// Cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (1 = direct mapped).
    pub ways: u32,
}

impl Default for CacheConfig {
    /// 32 KB, 32-byte lines, 2-way.
    fn default() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 32,
            ways: 2,
        }
    }
}

impl CacheConfig {
    /// The paper's literal geometry: 32 KB direct mapped.
    pub fn direct_mapped() -> Self {
        CacheConfig {
            ways: 1,
            ..CacheConfig::default()
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Load hits.
    pub hits: u64,
    /// Load misses.
    pub misses: u64,
    /// Stores (write-through).
    pub stores: u64,
}

impl CacheStats {
    /// Load miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    stamp: u64,
}

/// A set-associative cache simulator with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Way>,
    n_sets: u64,
    clock: u64,
    /// Statistics.
    pub stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not a valid geometry.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_bytes.is_power_of_two(), "line size");
        assert!(config.ways >= 1, "associativity");
        let lines = config.size_bytes / config.line_bytes;
        assert!(lines.is_multiple_of(config.ways as u64), "geometry");
        let n_sets = lines / config.ways as u64;
        Cache {
            config,
            sets: vec![
                Way {
                    tag: u64::MAX,
                    stamp: 0
                };
                lines as usize
            ],
            n_sets,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Simulates a load; returns whether it hit.
    pub fn load(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.config.line_bytes;
        let set = (line % self.n_sets) as usize;
        let ways = self.config.ways as usize;
        let base = set * ways;
        // Hit?
        for w in 0..ways {
            if self.sets[base + w].tag == line {
                self.sets[base + w].stamp = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        // Miss: replace LRU.
        let mut victim = 0;
        for w in 1..ways {
            if self.sets[base + w].stamp < self.sets[base + victim].stamp {
                victim = w;
            }
        }
        self.sets[base + victim] = Way {
            tag: line,
            stamp: self.clock,
        };
        self.stats.misses += 1;
        false
    }

    /// Simulates a store (write-through, no allocate).
    pub fn store(&mut self, addr: u64) {
        let _ = addr;
        self.stats.stores += 1;
    }
}

impl Default for Cache {
    fn default() -> Self {
        Cache::new(CacheConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_loads_hit() {
        let mut c = Cache::default();
        assert!(!c.load(0x1000));
        assert!(c.load(0x1000));
        assert!(c.load(0x1008), "same 32-byte line");
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn two_way_survives_one_conflict() {
        let mut c = Cache::default();
        let stride = 16 * 1024; // same set, different tag (2-way: 512 sets)
        assert!(!c.load(0));
        assert!(!c.load(stride));
        assert!(c.load(0), "both lines fit in a 2-way set");
        assert!(c.load(stride));
    }

    #[test]
    fn three_way_conflict_evicts_lru() {
        let mut c = Cache::default();
        let stride = 16 * 1024;
        assert!(!c.load(0));
        assert!(!c.load(stride));
        assert!(!c.load(2 * stride), "third line misses");
        assert!(!c.load(0), "LRU line 0 was evicted");
        assert!(c.load(2 * stride), "most recent lines remain");
    }

    #[test]
    fn direct_mapped_config_conflicts() {
        let mut c = Cache::new(CacheConfig::direct_mapped());
        let stride = 32 * 1024;
        assert!(!c.load(0));
        assert!(!c.load(stride));
        assert!(!c.load(0), "direct mapped: evicted");
        assert!((c.stats.miss_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stores_do_not_allocate() {
        let mut c = Cache::default();
        c.store(0x4000);
        assert!(!c.load(0x4000));
        assert_eq!(c.stats.stores, 1);
    }
}
