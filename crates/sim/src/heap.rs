//! The simulated heap.
//!
//! Cells carry their allocated (dynamic) type — the interpreter's
//! `ISTYPE`/`NARROW` and method dispatch read it — and a synthetic byte
//! address so the cache model sees realistic locality: allocations are
//! laid out sequentially, eight bytes per slot, sixteen-byte aligned,
//! starting at [`HEAP_BASE`].

use crate::value::{HeapId, Value};
use mini_m3::types::TypeId;

/// Base byte address of the simulated heap region.
pub const HEAP_BASE: u64 = 0x0001_0000_0000;

/// One allocated cell.
#[derive(Debug, Clone)]
pub struct HeapCell {
    /// The allocated (dynamic) type.
    pub ty: TypeId,
    /// Slot storage (slot 0 of an open array is the dope/length).
    pub slots: Vec<Value>,
    /// Synthetic byte address of slot 0.
    pub addr: u64,
}

/// The heap: an arena of cells.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    cells: Vec<HeapCell>,
    next_offset: u64,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Allocates a cell of `n_slots` slots, all initialized to `init`.
    pub fn alloc(&mut self, ty: TypeId, n_slots: u32, init: Value) -> HeapId {
        let id = HeapId(self.cells.len() as u32);
        let addr = HEAP_BASE + self.next_offset;
        // 8 bytes per slot plus an 8-byte header, 16-byte aligned.
        let bytes = (n_slots as u64 + 1) * 8;
        self.next_offset += bytes.div_ceil(16) * 16;
        self.cells.push(HeapCell {
            ty,
            slots: vec![init; n_slots.max(1) as usize],
            addr,
        });
        id
    }

    /// Cell accessor.
    pub fn cell(&self, id: HeapId) -> &HeapCell {
        &self.cells[id.0 as usize]
    }

    /// Mutable cell accessor.
    pub fn cell_mut(&mut self, id: HeapId) -> &mut HeapCell {
        &mut self.cells[id.0 as usize]
    }

    /// Number of allocated cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total slots allocated.
    pub fn total_slots(&self) -> usize {
        self.cells.iter().map(|c| c.slots.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_distinct_addresses() {
        let mut h = Heap::new();
        let a = h.alloc(TypeId(0), 2, Value::Nil);
        let b = h.alloc(TypeId(0), 2, Value::Nil);
        assert_ne!(a, b);
        assert!(h.cell(b).addr > h.cell(a).addr);
        assert_eq!(h.cell(a).addr % 16, 0);
        assert_eq!(h.cell(b).addr % 16, 0);
    }

    #[test]
    fn cells_hold_values() {
        let mut h = Heap::new();
        let a = h.alloc(TypeId(7), 3, Value::Int(0));
        h.cell_mut(a).slots[1] = Value::Int(42);
        assert_eq!(h.cell(a).slots[1], Value::Int(42));
        assert_eq!(h.cell(a).ty, TypeId(7));
        assert_eq!(h.total_slots(), 3);
    }

    #[test]
    fn zero_slot_alloc_still_has_storage() {
        let mut h = Heap::new();
        let a = h.alloc(TypeId(0), 0, Value::Nil);
        assert_eq!(h.cell(a).slots.len(), 1);
    }
}
