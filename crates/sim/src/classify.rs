//! The limit study: classifying the redundant loads RLE could not remove
//! (§3.5, Figures 9 and 10).
//!
//! After running RLE and tracing execution, every remaining dynamically
//! redundant heap load is attributed to one of the paper's five
//! categories, in priority order:
//!
//! 1. **Encapsulation** — the reference is implicit in the high-level IR
//!    (dope-vector bounds checks, dispatch header loads);
//! 2. **Conditional** — only partially redundant (available on some but
//!    not all paths); partial redundancy elimination would catch it;
//! 3. **Breakup** — the expression is split across a copy chain the
//!    optimizer cannot see through without copy propagation;
//! 4. **Alias failure** — a *perfect* alias analysis would have let RLE
//!    eliminate it, but TBAA could not disambiguate;
//! 5. **Rest** — everything else.
//!
//! Category tags are static per load site; the dynamic counts come from
//! the [`RedundancyTrace`] of the same (optimized) program.

use crate::trace::RedundancyTrace;
use std::collections::HashMap;
use tbaa::analysis::{NoAlias, Tbaa};
use tbaa_ir::ir::Program;
use tbaa_opt::copyprop;
use tbaa_opt::rle::{availability_sites, SiteAvail};

/// Dynamic redundant-load counts by category (the bars of Figure 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Implicit references (dope vectors, dispatch headers).
    pub encapsulated: u64,
    /// Partially redundant loads.
    pub conditional: u64,
    /// Copy-chain breakup.
    pub breakup: u64,
    /// TBAA imprecision.
    pub alias_failure: u64,
    /// Unattributed.
    pub rest: u64,
}

impl Breakdown {
    /// Total remaining redundant loads.
    pub fn total(&self) -> u64 {
        self.encapsulated + self.conditional + self.breakup + self.alias_failure + self.rest
    }
}

/// Static category of one load site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// See [`Breakdown::conditional`].
    Conditional,
    /// See [`Breakdown::breakup`].
    Breakup,
    /// See [`Breakdown::alias_failure`].
    AliasFailure,
    /// See [`Breakdown::rest`].
    Rest,
}

/// Classifies the remaining dynamic redundancy of an **already optimized**
/// program, given the trace of its run.
///
/// `prog` must be the RLE-optimized program the trace was produced from;
/// the shadow passes (copy propagation, the perfect-alias oracle) run on
/// clones, so `prog` is only mutated by prefix interning.
pub fn classify_remaining(
    prog: &mut Program,
    analysis: &Tbaa,
    trace: &RedundancyTrace,
) -> Breakdown {
    let mut out = Breakdown {
        encapsulated: trace.redundant_hidden,
        ..Breakdown::default()
    };

    // Static site tags.
    let tbaa_sites = availability_sites(prog, analysis);
    // Shadow 1: copy propagation; instruction positions are preserved.
    let mut cp_clone = prog.clone();
    copyprop::propagate_access_paths(&mut cp_clone, analysis);
    let cp_sites = availability_sites(&mut cp_clone, analysis);
    // Shadow 2: the perfect-alias oracle.
    let oracle_sites = availability_sites(prog, &NoAlias);
    // Shadow 3: the oracle *after* copy propagation (a breakup chain an
    // oracle could also not see through is still Breakup).
    let oracle_cp_sites = availability_sites(&mut cp_clone, &NoAlias);

    let categories: HashMap<_, Category> = trace
        .sites
        .keys()
        .map(|&site| {
            // Trace sites use a u32 instruction index; the analysis maps
            // use usize.
            let key = (site.0, site.1, site.2 as usize);
            let t = tbaa_sites.get(&key).copied().unwrap_or_default();
            let cp = cp_sites.get(&key).copied().unwrap_or_default();
            let or = oracle_sites.get(&key).copied().unwrap_or_default();
            let orcp = oracle_cp_sites.get(&key).copied().unwrap_or_default();
            let cat = classify_site(t, cp, or, orcp);
            (site, cat)
        })
        .collect();

    for (site, counts) in &trace.sites {
        if counts.redundant == 0 {
            continue;
        }
        match categories.get(site) {
            Some(Category::Conditional) => out.conditional += counts.redundant,
            Some(Category::Breakup) => out.breakup += counts.redundant,
            Some(Category::AliasFailure) => out.alias_failure += counts.redundant,
            _ => out.rest += counts.redundant,
        }
    }
    out
}

fn classify_site(
    tbaa: SiteAvail,
    cp: SiteAvail,
    oracle: SiteAvail,
    oracle_cp: SiteAvail,
) -> Category {
    debug_assert!(!tbaa.must, "a must-available load would have been removed");
    if tbaa.may || oracle.may || oracle_cp.may {
        // Available along some path only: PRE territory.
        if !tbaa.must && (tbaa.may || (!cp.must && !oracle.must && !oracle_cp.must)) {
            return Category::Conditional;
        }
    }
    if cp.must || oracle_cp.must {
        return Category::Breakup;
    }
    if oracle.must {
        return Category::AliasFailure;
    }
    Category::Rest
}

/// The two bars of Figure 9 for one program: the fraction of the
/// *original* heap references that are dynamically redundant, before and
/// after optimization.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LimitResult {
    /// Heap loads executed by the original program.
    pub original_heap_loads: u64,
    /// Redundant loads in the original program.
    pub redundant_original: u64,
    /// Heap loads executed by the optimized program.
    pub optimized_heap_loads: u64,
    /// Redundant loads remaining after optimization.
    pub redundant_after: u64,
}

impl LimitResult {
    /// The black bar of Figure 9.
    pub fn fraction_original(&self) -> f64 {
        if self.original_heap_loads == 0 {
            0.0
        } else {
            self.redundant_original as f64 / self.original_heap_loads as f64
        }
    }

    /// The white bar of Figure 9 — also relative to the *original* heap
    /// reference count, as in the paper.
    pub fn fraction_after(&self) -> f64 {
        if self.original_heap_loads == 0 {
            0.0
        } else {
            self.redundant_after as f64 / self.original_heap_loads as f64
        }
    }

    /// Percentage of the original redundancy the optimizer removed.
    pub fn removed_pct(&self) -> f64 {
        if self.redundant_original == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.redundant_after as f64 / self.redundant_original as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, NullHook, RunConfig};
    use tbaa::analysis::{Level, Tbaa};
    use tbaa::World;
    use tbaa_ir::compile_to_ir;

    fn run_trace(prog: &Program) -> RedundancyTrace {
        let mut t = RedundancyTrace::new();
        run(prog, &mut t, RunConfig::default()).unwrap();
        t
    }

    #[test]
    fn encapsulated_dominates_array_programs() {
        // Dope-vector loads inside the loop are redundant and invisible to
        // RLE — the paper's headline Figure 10 observation.
        let src = "MODULE M;
             TYPE A = ARRAY OF INTEGER;
             VAR a: A; s: INTEGER;
             BEGIN
               a := NEW(A, 32);
               FOR i := 0 TO 31 DO a[i] := i END;
               FOR i := 0 TO 31 DO s := s + a[i] END;
             END M.";
        let mut prog = compile_to_ir(src).unwrap();
        let analysis = Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed);
        tbaa_opt::rle::run_rle(&mut prog, &analysis);
        let trace = run_trace(&prog);
        let b = classify_remaining(&mut prog, &analysis, &trace);
        assert!(b.encapsulated > 0, "breakdown: {b:?}");
        assert!(
            b.encapsulated >= b.conditional + b.breakup + b.alias_failure,
            "encapsulation dominates: {b:?}"
        );
    }

    #[test]
    fn conditional_category_detected() {
        // t.f is loaded on one side of a branch and again after the join:
        // partially redundant, so RLE keeps it and the classifier calls it
        // Conditional. The object comes from an opaque constructor so no
        // store makes the path fully available.
        let src = "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Mk (): T =
             VAR t: T;
             BEGIN t := NEW(T); t.f := 3; RETURN t END Mk;
             VAR t: T; c: BOOLEAN; x, y: INTEGER;
             BEGIN
               t := Mk(); c := TRUE;
               IF c THEN x := t.f END;
               y := t.f;
             END M.";
        let mut prog = compile_to_ir(src).unwrap();
        let analysis = Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed);
        tbaa_opt::rle::run_rle(&mut prog, &analysis);
        let trace = run_trace(&prog);
        let b = classify_remaining(&mut prog, &analysis, &trace);
        assert!(b.conditional > 0, "breakdown: {b:?}");
    }

    #[test]
    fn optimization_removes_most_redundancy() {
        let src = "MODULE M;
             TYPE T = OBJECT f: INTEGER; n: T; END;
             VAR h: T; s: INTEGER;
             BEGIN
               h := NEW(T); h.f := 1; h.n := NEW(T); h.n.f := 2;
               FOR i := 1 TO 100 DO s := s + h.f + h.n.f END;
               PRINTI(s);
             END M.";
        let base = compile_to_ir(src).unwrap();
        let t_base = run_trace(&base);
        let mut opt = compile_to_ir(src).unwrap();
        let analysis = Tbaa::build(&opt, Level::SmFieldTypeRefs, World::Closed);
        tbaa_opt::rle::run_rle(&mut opt, &analysis);
        // Semantics preserved.
        let out_base = run(&base, &mut NullHook, RunConfig::default()).unwrap();
        let out_opt = run(&opt, &mut NullHook, RunConfig::default()).unwrap();
        assert_eq!(out_base.output, out_opt.output);
        let t_opt = run_trace(&opt);
        let lim = LimitResult {
            original_heap_loads: t_base.heap_loads,
            redundant_original: t_base.redundant,
            optimized_heap_loads: t_opt.heap_loads,
            redundant_after: t_opt.redundant,
        };
        assert!(lim.removed_pct() > 37.0, "paper range is 37%-87%: {lim:?}");
        assert!(lim.fraction_after() <= lim.fraction_original());
    }
}
