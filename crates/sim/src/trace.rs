//! ATOM-style load tracing and the dynamic redundancy metric of §3.5.
//!
//! The paper instruments every load in the executable with ATOM, recording
//! its address and value: *"A redundant load is when two consecutive loads
//! of the same address load the same value in the same procedure
//! activation."* This hook implements exactly that definition over the
//! interpreter's memory events, and additionally attributes redundant
//! heap loads to their static sites so the classifier (Figure 10) can
//! split them into the paper's categories.

use crate::interp::{MemEvent, MemHook, MemKind, Site};
use crate::value::Value;
use std::collections::HashMap;

/// Per-site dynamic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCounts {
    /// Loads executed from this site.
    pub loads: u64,
    /// Of those, dynamically redundant ones.
    pub redundant: u64,
}

/// The redundancy trace.
#[derive(Debug, Default)]
pub struct RedundancyTrace {
    /// Heap loads executed (visible and hidden).
    pub heap_loads: u64,
    /// Dynamically redundant heap loads.
    pub redundant: u64,
    /// Redundant loads at *hidden* references (dope vectors, dispatch
    /// headers) — the raw material of the Encapsulation category.
    pub redundant_hidden: u64,
    /// Per visible site counters.
    pub sites: HashMap<Site, SiteCounts>,
    /// Last load of each address: `(activation, value)`.
    last: HashMap<u64, (u64, Value)>,
}

impl RedundancyTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of heap loads that were redundant.
    pub fn redundant_fraction(&self) -> f64 {
        if self.heap_loads == 0 {
            0.0
        } else {
            self.redundant as f64 / self.heap_loads as f64
        }
    }
}

impl MemHook for RedundancyTrace {
    fn access(&mut self, ev: &MemEvent<'_>) {
        if ev.kind != MemKind::Heap {
            return;
        }
        if !ev.is_load {
            return;
        }
        self.heap_loads += 1;
        let mut is_redundant = false;
        if let Some(value) = ev.value {
            if let Some((act, prev)) = self.last.get(&ev.addr) {
                if *act == ev.activation && prev == value {
                    is_redundant = true;
                }
            }
            self.last.insert(ev.addr, (ev.activation, value.clone()));
        }
        if is_redundant {
            self.redundant += 1;
            if ev.hidden || ev.site.is_none() {
                self.redundant_hidden += 1;
            }
        }
        if let Some(site) = ev.site {
            if !ev.hidden {
                let c = self.sites.entry(site).or_default();
                c.loads += 1;
                if is_redundant {
                    c.redundant += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, RunConfig};
    use tbaa_ir::compile_to_ir;

    fn trace_src(src: &str) -> RedundancyTrace {
        let prog = compile_to_ir(src).unwrap();
        let mut t = RedundancyTrace::new();
        run(&prog, &mut t, RunConfig::default()).unwrap();
        t
    }

    #[test]
    fn repeated_load_same_value_is_redundant() {
        let t = trace_src(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; x, y: INTEGER;
             BEGIN
               t := NEW(T); t.f := 7;
               x := t.f;
               y := t.f;
             END M.",
        );
        assert_eq!(t.redundant, 1, "the second load is redundant");
    }

    #[test]
    fn store_changing_value_breaks_redundancy() {
        let t = trace_src(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; x, y: INTEGER;
             BEGIN
               t := NEW(T); t.f := 7;
               x := t.f;
               t.f := 8;
               y := t.f;
             END M.",
        );
        assert_eq!(t.redundant, 0);
    }

    #[test]
    fn store_of_same_value_keeps_redundancy() {
        // The paper's criterion compares consecutive *loads*: a store that
        // writes the same value back does not make the next load fresh.
        let t = trace_src(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; x, y: INTEGER;
             BEGIN
               t := NEW(T); t.f := 7;
               x := t.f;
               t.f := 7;
               y := t.f;
             END M.",
        );
        assert_eq!(t.redundant, 1);
    }

    #[test]
    fn different_activations_are_not_redundant() {
        let t = trace_src(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Read (t: T): INTEGER = BEGIN RETURN t.f END Read;
             VAR t: T; x, y: INTEGER;
             BEGIN
               t := NEW(T); t.f := 7;
               x := Read(t);
               y := Read(t);
             END M.",
        );
        assert_eq!(
            t.redundant, 0,
            "same address and value but different activations"
        );
    }

    #[test]
    fn loop_invariant_loads_are_redundant_dynamically() {
        let t = trace_src(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; s: INTEGER;
             BEGIN
               t := NEW(T); t.f := 2;
               FOR i := 1 TO 10 DO s := s + t.f END;
             END M.",
        );
        // 10 loads of t.f; 9 are redundant.
        assert_eq!(t.redundant, 9);
        let site_redundant: u64 = t.sites.values().map(|c| c.redundant).sum();
        assert_eq!(site_redundant, 9);
    }

    #[test]
    fn dope_loads_count_as_hidden_redundancy() {
        let t = trace_src(
            "MODULE M;
             TYPE A = ARRAY OF INTEGER;
             VAR a: A; s: INTEGER;
             BEGIN
               a := NEW(A, 8);
               FOR i := 0 TO 7 DO s := s + a[i] END;
             END M.",
        );
        // The 8 bounds-check loads of the dope slot: 7 redundant.
        assert!(t.redundant_hidden >= 7, "trace: {t:?}");
    }
}
