//! The IR interpreter.
//!
//! Executes lowered programs, counting instructions and memory references
//! exactly as the paper's tables need them: every executed `LoadMem` /
//! `StoreMem` is one **heap** reference (including hidden dope-vector
//! bounds checks), stack/global traffic is an **other** reference, and
//! scalar register-class locals are free. Method dispatch performs an
//! implicit (hidden) header load; direct and dispatched calls charge a
//! small frame-traffic overhead, which is what method resolution and
//! inlining save in Figure 11.
//!
//! A [`MemHook`] observes every memory event with its synthetic byte
//! address, the source load site, and the loaded value — enough for both
//! the cache/timing model (Figure 8) and the ATOM-style redundancy trace
//! (Figures 9 and 10).

use crate::heap::Heap;
use crate::value::{HeapId, Location, Value};
use mini_m3::ast::{BinOp, UnOp};
use mini_m3::types::{TypeId, TypeKind};
use std::fmt;
use std::sync::Arc;
use tbaa_ir::ir::{
    BlockId, Instr, IntrinsicOp, MemAddr, Operand, Program, Reg, SlotAddr, SlotBase, Terminator,
    VarClass,
};
use tbaa_ir::path::{ApId, FuncId, VarId};

/// Base byte address of the simulated global area. The region bases are
/// deliberately staggered modulo the cache geometry so the heap, globals,
/// and stack do not all collide on cache index 0 — a layout artifact real
/// linkers also avoid.
pub const GLOBAL_BASE: u64 = 0x0000_2000_01a0;
/// Top byte address of the simulated stack (frames grow down).
pub const STACK_TOP: u64 = 0x0000_7fff_2f40;

/// Extra instructions charged per direct call (call/ret/frame setup).
pub const CALL_EXTRA_INSTRS: u64 = 3;
/// Extra instructions charged per dynamic dispatch on top of the call.
pub const DISPATCH_EXTRA_INSTRS: u64 = 4;

/// What kind of memory an event touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Heap data.
    Heap,
    /// Stack frames.
    Stack,
    /// Globals.
    Global,
}

/// A load site in the program text.
pub type Site = (FuncId, BlockId, u32);

/// One memory reference, as seen by a [`MemHook`].
#[derive(Debug)]
pub struct MemEvent<'v> {
    /// Synthetic byte address.
    pub addr: u64,
    /// Memory region.
    pub kind: MemKind,
    /// Load or store.
    pub is_load: bool,
    /// True for references that are implicit in the high-level IR
    /// (dope-vector bounds checks, dispatch header loads, frame traffic).
    pub hidden: bool,
    /// The instruction site, when the event comes from a visible
    /// instruction.
    pub site: Option<Site>,
    /// The access path, for heap references that have one.
    pub ap: Option<ApId>,
    /// Procedure activation id (for the redundancy definition of §3.5).
    pub activation: u64,
    /// The value loaded/stored, when it is a visible data reference.
    pub value: Option<&'v Value>,
}

/// Observer of memory references.
pub trait MemHook {
    /// Called once per memory reference, in execution order.
    fn access(&mut self, ev: &MemEvent<'_>);
}

/// A hook that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHook;

impl MemHook for NullHook {
    fn access(&mut self, _ev: &MemEvent<'_>) {}
}

/// Executed-instruction and memory-reference counters (Table 4's columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounts {
    /// Instructions executed (including call/dispatch overhead).
    pub instructions: u64,
    /// Heap loads (visible + hidden).
    pub heap_loads: u64,
    /// Heap stores.
    pub heap_stores: u64,
    /// Stack and global loads.
    pub other_loads: u64,
    /// Stack and global stores.
    pub other_stores: u64,
    /// Direct calls executed.
    pub calls: u64,
    /// Dispatched method calls executed.
    pub method_calls: u64,
    /// Heap allocations.
    pub allocs: u64,
}

impl ExecCounts {
    /// Percentage of instructions that are heap loads.
    pub fn heap_load_pct(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            100.0 * self.heap_loads as f64 / self.instructions as f64
        }
    }

    /// Percentage of instructions that are other (stack/global) loads.
    pub fn other_load_pct(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            100.0 * self.other_loads as f64 / self.instructions as f64
        }
    }
}

/// A failed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// NIL dereference.
    NilDeref,
    /// Array subscript out of bounds.
    OutOfBounds,
    /// `NARROW` to an incompatible type.
    NarrowFailed,
    /// DIV or MOD by zero.
    DivByZero,
    /// Instruction budget exhausted.
    OutOfFuel,
    /// Call stack too deep.
    StackOverflow,
    /// Dispatch found no implementation (abstract method).
    NoMethod(String),
    /// A function fell off its end without RETURN while a value was
    /// expected.
    MissingReturn(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NilDeref => write!(f, "NIL dereference"),
            RuntimeError::OutOfBounds => write!(f, "array index out of bounds"),
            RuntimeError::NarrowFailed => write!(f, "NARROW to incompatible type"),
            RuntimeError::DivByZero => write!(f, "integer division by zero"),
            RuntimeError::OutOfFuel => write!(f, "instruction budget exhausted"),
            RuntimeError::StackOverflow => write!(f, "call stack overflow"),
            RuntimeError::NoMethod(m) => write!(f, "no implementation for method `{m}`"),
            RuntimeError::MissingReturn(p) => {
                write!(f, "procedure `{p}` returned without a value")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The result of a successful run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Counters.
    pub counts: ExecCounts,
    /// Everything PRINT/PRINTI wrote.
    pub output: String,
    /// Heap cells allocated.
    pub heap_cells: usize,
}

/// Interpreter configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Maximum executed instructions.
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for RunConfig {
    /// The interpreter uses an explicit activation stack (no Rust
    /// recursion), so deep MiniM3 recursion is cheap; the cap only bounds
    /// runaway programs.
    fn default() -> Self {
        RunConfig {
            fuel: 2_000_000_000,
            max_depth: 100_000,
        }
    }
}

/// Runs a program's `<main>` with the given hook.
///
/// # Errors
///
/// Returns a [`RuntimeError`] if the program traps or exhausts its budget.
pub fn run(
    prog: &Program,
    hook: &mut dyn MemHook,
    config: RunConfig,
) -> Result<RunOutcome, RuntimeError> {
    let mut interp = Interp::new(prog, hook, config);
    interp.push_frame(prog.main, Vec::new(), None, (BlockId(0), 0), true)?;
    interp.exec()?;
    Ok(RunOutcome {
        counts: interp.counts,
        output: interp.output,
        heap_cells: interp.heap.len(),
    })
}

struct Frame {
    func: FuncId,
    regs: Vec<Value>,
    vars: Vec<Vec<Value>>,
    activation: u64,
    base_addr: u64,
    /// Bytes to give back to the simulated stack pointer on return.
    frame_bytes: u64,
    /// Caller register receiving the return value, if any.
    ret_dst: Option<Reg>,
    /// Where the caller resumes: `(block, instruction index)`.
    resume: (BlockId, usize),
}

/// Per-function frame layout: slot offset of each variable.
struct Layout {
    var_offsets: Vec<u32>,
    size: u32,
}

struct Interp<'p, 'h> {
    prog: &'p Program,
    hook: &'h mut dyn MemHook,
    config: RunConfig,
    heap: Heap,
    globals: Vec<Vec<Value>>,
    frames: Vec<Frame>,
    layouts: Vec<Layout>,
    texts: Vec<Arc<str>>,
    counts: ExecCounts,
    output: String,
    fuel: u64,
    next_activation: u64,
    sp: u64,
}

impl<'p, 'h> Interp<'p, 'h> {
    fn new(prog: &'p Program, hook: &'h mut dyn MemHook, config: RunConfig) -> Self {
        let globals = prog
            .globals
            .iter()
            .map(|g| zero_storage(prog, g.ty, g.size))
            .collect();
        let layouts = prog
            .funcs
            .iter()
            .map(|f| {
                let mut offsets = Vec::with_capacity(f.vars.len());
                let mut size = 0u32;
                for v in &f.vars {
                    offsets.push(size);
                    size += v.size;
                }
                Layout {
                    var_offsets: offsets,
                    size,
                }
            })
            .collect();
        let texts = prog.texts.iter().map(|t| Arc::from(t.as_str())).collect();
        Interp {
            prog,
            hook,
            config,
            heap: Heap::new(),
            globals,
            frames: Vec::new(),
            layouts,
            texts,
            counts: ExecCounts::default(),
            output: String::new(),
            fuel: config.fuel,
            next_activation: 0,
            sp: STACK_TOP,
        }
    }

    fn frame(&self) -> &Frame {
        self.frames.last().expect("active frame")
    }

    fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("active frame")
    }

    fn spend(&mut self, n: u64) -> Result<(), RuntimeError> {
        self.counts.instructions += n;
        if self.fuel < n {
            return Err(RuntimeError::OutOfFuel);
        }
        self.fuel -= n;
        Ok(())
    }

    fn operand(&self, op: Operand) -> Value {
        match op {
            Operand::Reg(r) => self.frame().regs[r.0 as usize].clone(),
            Operand::ImmInt(v) => Value::Int(v),
            Operand::ImmBool(b) => Value::Bool(b),
            Operand::ImmChar(c) => Value::Char(c),
            Operand::ImmNil => Value::Nil,
        }
    }

    fn set_reg(&mut self, r: tbaa_ir::ir::Reg, v: Value) {
        self.frame_mut().regs[r.0 as usize] = v;
    }

    // ---- addresses ------------------------------------------------------

    fn slot_index(&self, addr: &SlotAddr, storage_len: usize) -> Result<u32, RuntimeError> {
        let mut idx = addr.offset as i64;
        for (op, lo, scale) in &addr.indices {
            let i = self.operand(*op).as_int();
            idx += (i - lo) * *scale as i64;
        }
        if idx < 0 || idx as usize >= storage_len {
            return Err(RuntimeError::OutOfBounds);
        }
        Ok(idx as u32)
    }

    fn frame_slot_addr(&self, frame_idx: usize, var: VarId, offset: u32) -> u64 {
        let f = &self.frames[frame_idx];
        let layout = &self.layouts[f.func.0 as usize];
        f.base_addr + (layout.var_offsets[var.0 as usize] + offset) as u64 * 8
    }

    fn global_slot_addr(&self, g: mini_m3::check::GlobalId, offset: u32) -> u64 {
        GLOBAL_BASE + (self.prog.globals[g.0 as usize].offset + offset) as u64 * 8
    }

    /// Resolves a heap address to (cell, slot), checking bounds and NIL.
    fn mem_slot(&self, addr: &MemAddr) -> Result<(HeapId, u32), RuntimeError> {
        let base = self.operand(addr.base);
        let cell = match base {
            Value::Ref(c) => c,
            Value::Nil => return Err(RuntimeError::NilDeref),
            other => panic!("heap access through non-reference {other:?}"),
        };
        let mut idx = addr.offset as i64;
        for (op, lo, scale) in &addr.indices {
            let i = self.operand(*op).as_int();
            idx += (i - lo) * *scale as i64;
        }
        if idx < 0 || idx as usize >= self.heap.cell(cell).slots.len() {
            return Err(RuntimeError::OutOfBounds);
        }
        Ok((cell, idx as u32))
    }

    // ---- events ---------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        addr: u64,
        kind: MemKind,
        is_load: bool,
        hidden: bool,
        site: Option<Site>,
        ap: Option<ApId>,
        value: Option<&Value>,
    ) {
        match (kind, is_load) {
            (MemKind::Heap, true) => self.counts.heap_loads += 1,
            (MemKind::Heap, false) => self.counts.heap_stores += 1,
            (_, true) => self.counts.other_loads += 1,
            (_, false) => self.counts.other_stores += 1,
        }
        let activation = self.frame().activation;
        self.hook.access(&MemEvent {
            addr,
            kind,
            is_load,
            hidden,
            site,
            ap,
            activation,
            value,
        });
    }

    // ---- calls ----------------------------------------------------------

    /// Pushes an activation. `resume` is where the *caller* continues.
    fn push_frame(
        &mut self,
        fid: FuncId,
        args: Vec<Value>,
        ret_dst: Option<Reg>,
        resume: (BlockId, usize),
        is_main: bool,
    ) -> Result<(), RuntimeError> {
        if self.frames.len() >= self.config.max_depth {
            return Err(RuntimeError::StackOverflow);
        }
        let func = self.prog.func(fid);
        let layout = &self.layouts[fid.0 as usize];
        let frame_bytes = (layout.size as u64 + 4) * 8;
        self.sp -= frame_bytes;
        let base_addr = self.sp;
        let activation = self.next_activation;
        self.next_activation += 1;
        let mut vars: Vec<Vec<Value>> = func
            .vars
            .iter()
            .map(|v| zero_storage(self.prog, v.ty, v.size))
            .collect();
        let n_args = args.len();
        for (i, a) in args.into_iter().enumerate() {
            vars[i][0] = a;
        }
        self.frames.push(Frame {
            func: fid,
            regs: vec![Value::Nil; func.n_regs as usize],
            vars,
            activation,
            base_addr,
            frame_bytes,
            ret_dst,
            resume,
        });
        // Call overhead: frame setup traffic (hidden stack events).
        if !is_main {
            self.spend(CALL_EXTRA_INSTRS)?;
            for k in 0..(2 + n_args as u64) {
                self.emit(
                    base_addr + k * 8,
                    MemKind::Stack,
                    false,
                    true,
                    None,
                    None,
                    None,
                );
            }
        }
        Ok(())
    }

    /// The main execution loop. Calls push activations rather than
    /// recursing on the Rust stack, so MiniM3 recursion depth is bounded
    /// only by [`RunConfig::max_depth`].
    fn exec(&mut self) -> Result<(), RuntimeError> {
        let mut bb = BlockId(0);
        let mut ii = 0usize;
        'outer: loop {
            let fid = self.frame().func;
            let func = self.prog.func(fid);
            let block = func.block(bb);
            while ii < block.instrs.len() {
                let instr = &block.instrs[ii];
                match instr {
                    Instr::Call {
                        dst,
                        func: callee,
                        args,
                        ..
                    } => {
                        self.spend(1)?;
                        self.counts.calls += 1;
                        let argv: Vec<Value> = args.iter().map(|a| self.operand(*a)).collect();
                        self.push_frame(*callee, argv, *dst, (bb, ii + 1), false)?;
                        bb = BlockId(0);
                        ii = 0;
                        continue 'outer;
                    }
                    Instr::CallMethod {
                        dst, method, args, ..
                    } => {
                        self.spend(1)?;
                        self.counts.method_calls += 1;
                        self.spend(DISPATCH_EXTRA_INSTRS)?;
                        let argv: Vec<Value> = args.iter().map(|a| self.operand(*a)).collect();
                        let recv_cell = match &argv[0] {
                            Value::Ref(c) => *c,
                            Value::Nil => return Err(RuntimeError::NilDeref),
                            other => panic!("method receiver {other:?}"),
                        };
                        // Dispatch reads the object header (typecode): an
                        // implicit heap load.
                        let hdr = self.heap.cell(recv_cell).addr.wrapping_sub(8);
                        self.emit(hdr, MemKind::Heap, true, true, None, None, None);
                        let dyn_ty = self.heap.cell(recv_cell).ty;
                        let target = self.resolve_method(dyn_ty, method)?;
                        self.push_frame(target, argv, *dst, (bb, ii + 1), false)?;
                        bb = BlockId(0);
                        ii = 0;
                        continue 'outer;
                    }
                    _ => {
                        self.exec_instr(fid, bb, ii as u32, instr)?;
                        ii += 1;
                    }
                }
            }
            match &block.term {
                Terminator::Jump(t) => {
                    bb = *t;
                    ii = 0;
                }
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    self.spend(1)?;
                    bb = if self.operand(*cond).as_bool() {
                        *then_bb
                    } else {
                        *else_bb
                    };
                    ii = 0;
                }
                Terminator::Return(op) => {
                    self.spend(1)?;
                    let value = op.map(|o| self.operand(o));
                    let is_main = self.frames.len() == 1;
                    if !is_main {
                        let base_addr = self.frame().base_addr;
                        for k in 0..2u64 {
                            self.emit(
                                base_addr + k * 8,
                                MemKind::Stack,
                                true,
                                true,
                                None,
                                None,
                                None,
                            );
                        }
                    }
                    let fr = self.frames.pop().expect("active frame");
                    self.sp += fr.frame_bytes;
                    if is_main {
                        return Ok(());
                    }
                    match (fr.ret_dst, value) {
                        (Some(d), Some(v)) => self.set_reg(d, v),
                        (Some(_), None) => {
                            let name = self.prog.func(fr.func).name.clone();
                            return Err(RuntimeError::MissingReturn(name));
                        }
                        _ => {}
                    }
                    bb = fr.resume.0;
                    ii = fr.resume.1;
                }
            }
        }
    }

    // ---- instructions ------------------------------------------------------

    fn exec_instr(
        &mut self,
        fid: FuncId,
        bb: BlockId,
        ii: u32,
        instr: &Instr,
    ) -> Result<(), RuntimeError> {
        // Plain reads/writes of register-class locals are register moves a
        // register-allocating back end coalesces away: free.
        let free = match instr {
            Instr::LoadSlot { addr, .. } | Instr::StoreSlot { addr, .. } if addr.is_simple() => {
                match addr.base {
                    SlotBase::Local(v) => {
                        self.prog.func(fid).vars[v.0 as usize].class == VarClass::Register
                    }
                    SlotBase::Global(_) => false,
                }
            }
            _ => false,
        };
        if !free {
            self.spend(1)?;
        }
        let site = Some((fid, bb, ii));
        match instr {
            Instr::ConstText { dst, text } => {
                let v = Value::Text(self.texts[*text as usize].clone());
                self.set_reg(*dst, v);
            }
            Instr::Copy { dst, src } => {
                let v = self.operand(*src);
                self.set_reg(*dst, v);
            }
            Instr::Un { dst, op, src } => {
                let v = self.operand(*src);
                let r = match op {
                    UnOp::Neg => Value::Int(-v.as_int()),
                    UnOp::Not => Value::Bool(!v.as_bool()),
                };
                self.set_reg(*dst, r);
            }
            Instr::Bin { dst, op, lhs, rhs } => {
                let l = self.operand(*lhs);
                let r = self.operand(*rhs);
                let v = self.binop(*op, l, r)?;
                self.set_reg(*dst, v);
            }
            Instr::LoadSlot { dst, addr } => {
                let v = self.load_slot(addr, site)?;
                self.set_reg(*dst, v);
            }
            Instr::StoreSlot { addr, src } => {
                let v = self.operand(*src);
                self.store_slot(addr, v, site)?;
            }
            Instr::LoadMem {
                dst,
                addr,
                ap,
                hidden,
            } => {
                let (cell, slot) = self.mem_slot(addr)?;
                let value = self.heap.cell(cell).slots[slot as usize].clone();
                let a = self.heap.cell(cell).addr + slot as u64 * 8;
                self.emit(
                    a,
                    MemKind::Heap,
                    true,
                    *hidden,
                    site,
                    Some(*ap),
                    Some(&value),
                );
                self.set_reg(*dst, value);
            }
            Instr::StoreMem { addr, src, ap } => {
                let v = self.operand(*src);
                let (cell, slot) = self.mem_slot(addr)?;
                let a = self.heap.cell(cell).addr + slot as u64 * 8;
                self.emit(a, MemKind::Heap, false, false, site, Some(*ap), Some(&v));
                self.heap.cell_mut(cell).slots[slot as usize] = v;
            }
            Instr::LoadInd { dst, loc } => {
                let Value::Loc(l) = self.operand(*loc) else {
                    panic!("LoadInd through non-location");
                };
                let v = self.load_location(l, site)?;
                self.set_reg(*dst, v);
            }
            Instr::StoreInd { loc, src } => {
                let v = self.operand(*src);
                let Value::Loc(l) = self.operand(*loc) else {
                    panic!("StoreInd through non-location");
                };
                self.store_location(l, v, site)?;
            }
            Instr::TakeAddrSlot { dst, addr } => {
                let loc = match addr.base {
                    SlotBase::Local(v) => {
                        let storage_len = self.frame().vars[v.0 as usize].len();
                        let off = self.slot_index(addr, storage_len)?;
                        Location::Frame {
                            frame: (self.frames.len() - 1) as u32,
                            var: v,
                            offset: off,
                        }
                    }
                    SlotBase::Global(g) => {
                        let storage_len = self.globals[g.0 as usize].len();
                        let off = self.slot_index(addr, storage_len)?;
                        Location::Global {
                            global: g,
                            offset: off,
                        }
                    }
                };
                self.set_reg(*dst, Value::Loc(loc));
            }
            Instr::TakeAddrMem { dst, addr, .. } => {
                let (cell, slot) = self.mem_slot(addr)?;
                self.set_reg(*dst, Value::Loc(Location::Heap { cell, slot }));
            }
            Instr::New { dst, ty } => {
                self.counts.allocs += 1;
                let slots = self.new_slots(*ty);
                let n = slots.len() as u32;
                let cell = self.heap.alloc(*ty, n, Value::Nil);
                self.heap.cell_mut(cell).slots = slots;
                self.set_reg(*dst, Value::Ref(cell));
            }
            Instr::NewArray { dst, ty, len } => {
                self.counts.allocs += 1;
                let n = self.operand(*len).as_int();
                if n < 0 {
                    return Err(RuntimeError::OutOfBounds);
                }
                let TypeKind::Array { elem, .. } = self.prog.types.kind(*ty) else {
                    panic!("NewArray of non-array type");
                };
                let esz = self.prog.types.size_of(*elem);
                let elem_zero_slots = self.zero_slots_of(*elem);
                let mut slots = Vec::with_capacity(1 + (n as usize) * esz as usize);
                slots.push(Value::Int(n));
                for _ in 0..n {
                    slots.extend(elem_zero_slots.iter().cloned());
                }
                let total = slots.len() as u32;
                let cell = self.heap.alloc(*ty, total, Value::Nil);
                self.heap.cell_mut(cell).slots = slots;
                self.set_reg(*dst, Value::Ref(cell));
            }
            Instr::Call { .. } | Instr::CallMethod { .. } => {
                unreachable!("calls are handled by the activation-stack driver")
            }
            Instr::Intrinsic { dst, op, args } => {
                let argv: Vec<Value> = args.iter().map(|a| self.operand(*a)).collect();
                let r = self.intrinsic(*op, &argv)?;
                if let (Some(d), Some(v)) = (dst, r) {
                    self.set_reg(*d, v);
                }
            }
            Instr::TypeTest { dst, src, ty } => {
                let v = self.operand(*src);
                let b = match v {
                    Value::Ref(c) => self.prog.types.is_subtype(self.heap.cell(c).ty, *ty),
                    _ => false,
                };
                self.set_reg(*dst, Value::Bool(b));
            }
            Instr::NarrowTo { dst, src, ty } => {
                let v = self.operand(*src);
                match &v {
                    Value::Ref(c) => {
                        if !self.prog.types.is_subtype(self.heap.cell(*c).ty, *ty) {
                            return Err(RuntimeError::NarrowFailed);
                        }
                    }
                    Value::Nil => {}
                    other => panic!("NARROW of {other:?}"),
                }
                self.set_reg(*dst, v);
            }
        }
        Ok(())
    }

    fn resolve_method(&self, ty: TypeId, method: &str) -> Result<FuncId, RuntimeError> {
        for t in self.prog.types.ancestry(ty) {
            if let Some(&f) = self.prog.method_impls.get(&(t, method.to_string())) {
                return Ok(f);
            }
        }
        Err(RuntimeError::NoMethod(method.to_string()))
    }

    fn load_slot(&mut self, addr: &SlotAddr, site: Option<Site>) -> Result<Value, RuntimeError> {
        match addr.base {
            SlotBase::Local(v) => {
                let storage_len = self.frame().vars[v.0 as usize].len();
                let off = self.slot_index(addr, storage_len)?;
                let val = self.frame().vars[v.0 as usize][off as usize].clone();
                let func = self.frame().func;
                let is_mem = self.prog.func(func).vars[v.0 as usize].class == VarClass::Stack;
                if is_mem {
                    let a = self.frame_slot_addr(self.frames.len() - 1, v, off);
                    self.emit(a, MemKind::Stack, true, false, site, None, Some(&val));
                }
                Ok(val)
            }
            SlotBase::Global(g) => {
                let storage_len = self.globals[g.0 as usize].len();
                let off = self.slot_index(addr, storage_len)?;
                let val = self.globals[g.0 as usize][off as usize].clone();
                let a = self.global_slot_addr(g, off);
                self.emit(a, MemKind::Global, true, false, site, None, Some(&val));
                Ok(val)
            }
        }
    }

    fn store_slot(
        &mut self,
        addr: &SlotAddr,
        val: Value,
        site: Option<Site>,
    ) -> Result<(), RuntimeError> {
        match addr.base {
            SlotBase::Local(v) => {
                let storage_len = self.frame().vars[v.0 as usize].len();
                let off = self.slot_index(addr, storage_len)?;
                let func = self.frame().func;
                let is_mem = self.prog.func(func).vars[v.0 as usize].class == VarClass::Stack;
                if is_mem {
                    let a = self.frame_slot_addr(self.frames.len() - 1, v, off);
                    self.emit(a, MemKind::Stack, false, false, site, None, Some(&val));
                }
                self.frame_mut().vars[v.0 as usize][off as usize] = val;
                Ok(())
            }
            SlotBase::Global(g) => {
                let storage_len = self.globals[g.0 as usize].len();
                let off = self.slot_index(addr, storage_len)?;
                let a = self.global_slot_addr(g, off);
                self.emit(a, MemKind::Global, false, false, site, None, Some(&val));
                self.globals[g.0 as usize][off as usize] = val;
                Ok(())
            }
        }
    }

    fn load_location(&mut self, l: Location, site: Option<Site>) -> Result<Value, RuntimeError> {
        match l {
            Location::Frame { frame, var, offset } => {
                let val = self.frames[frame as usize].vars[var.0 as usize][offset as usize].clone();
                let a = self.frame_slot_addr(frame as usize, var, offset);
                self.emit(a, MemKind::Stack, true, false, site, None, Some(&val));
                Ok(val)
            }
            Location::Global { global, offset } => {
                let val = self.globals[global.0 as usize][offset as usize].clone();
                let a = self.global_slot_addr(global, offset);
                self.emit(a, MemKind::Global, true, false, site, None, Some(&val));
                Ok(val)
            }
            Location::Heap { cell, slot } => {
                let val = self.heap.cell(cell).slots[slot as usize].clone();
                let a = self.heap.cell(cell).addr + slot as u64 * 8;
                self.emit(a, MemKind::Heap, true, false, site, None, Some(&val));
                Ok(val)
            }
        }
    }

    fn store_location(
        &mut self,
        l: Location,
        val: Value,
        site: Option<Site>,
    ) -> Result<(), RuntimeError> {
        match l {
            Location::Frame { frame, var, offset } => {
                let a = self.frame_slot_addr(frame as usize, var, offset);
                self.emit(a, MemKind::Stack, false, false, site, None, Some(&val));
                self.frames[frame as usize].vars[var.0 as usize][offset as usize] = val;
                Ok(())
            }
            Location::Global { global, offset } => {
                let a = self.global_slot_addr(global, offset);
                self.emit(a, MemKind::Global, false, false, site, None, Some(&val));
                self.globals[global.0 as usize][offset as usize] = val;
                Ok(())
            }
            Location::Heap { cell, slot } => {
                let a = self.heap.cell(cell).addr + slot as u64 * 8;
                self.emit(a, MemKind::Heap, false, false, site, None, Some(&val));
                self.heap.cell_mut(cell).slots[slot as usize] = val;
                Ok(())
            }
        }
    }

    fn binop(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
        Ok(match op {
            BinOp::Add => Value::Int(l.as_int().wrapping_add(r.as_int())),
            BinOp::Sub => Value::Int(l.as_int().wrapping_sub(r.as_int())),
            BinOp::Mul => Value::Int(l.as_int().wrapping_mul(r.as_int())),
            BinOp::Div => {
                let d = r.as_int();
                if d == 0 {
                    return Err(RuntimeError::DivByZero);
                }
                Value::Int(l.as_int().div_euclid(d))
            }
            BinOp::Mod => {
                let d = r.as_int();
                if d == 0 {
                    return Err(RuntimeError::DivByZero);
                }
                Value::Int(l.as_int().rem_euclid(d))
            }
            BinOp::Concat => unreachable!("lowered to an intrinsic"),
            BinOp::Eq => Value::Bool(l == r),
            BinOp::Ne => Value::Bool(l != r),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let c = match (&l, &r) {
                    (Value::Int(a), Value::Int(b)) => a.cmp(b),
                    (Value::Char(a), Value::Char(b)) => a.cmp(b),
                    other => panic!("ordering on {other:?}"),
                };
                Value::Bool(match op {
                    BinOp::Lt => c.is_lt(),
                    BinOp::Le => c.is_le(),
                    BinOp::Gt => c.is_gt(),
                    _ => c.is_ge(),
                })
            }
            BinOp::And | BinOp::Or => unreachable!("lowered to control flow"),
        })
    }

    fn intrinsic(
        &mut self,
        op: IntrinsicOp,
        args: &[Value],
    ) -> Result<Option<Value>, RuntimeError> {
        Ok(match op {
            IntrinsicOp::Ord => Some(Value::Int(args[0].as_char() as i64)),
            IntrinsicOp::Chr => Some(Value::Char(
                char::from_u32(args[0].as_int() as u32).unwrap_or('\u{FFFD}'),
            )),
            IntrinsicOp::Abs => Some(Value::Int(args[0].as_int().wrapping_abs())),
            IntrinsicOp::Min => Some(Value::Int(args[0].as_int().min(args[1].as_int()))),
            IntrinsicOp::Max => Some(Value::Int(args[0].as_int().max(args[1].as_int()))),
            IntrinsicOp::TextLen => Some(Value::Int(args[0].as_text().chars().count() as i64)),
            IntrinsicOp::TextChar => {
                let t = args[0].as_text();
                let i = args[1].as_int();
                match t.chars().nth(i.max(0) as usize) {
                    Some(c) if i >= 0 => Some(Value::Char(c)),
                    _ => return Err(RuntimeError::OutOfBounds),
                }
            }
            IntrinsicOp::IntToText => Some(Value::Text(Arc::from(args[0].as_int().to_string()))),
            IntrinsicOp::CharToText => Some(Value::Text(Arc::from(args[0].as_char().to_string()))),
            IntrinsicOp::TextConcat => {
                let mut s = String::from(&*args[0].as_text());
                s.push_str(&args[1].as_text());
                Some(Value::Text(Arc::from(s)))
            }
            IntrinsicOp::Print => {
                self.output.push_str(&args[0].as_text());
                None
            }
            IntrinsicOp::PrintInt => {
                self.output.push_str(&args[0].as_int().to_string());
                None
            }
        })
    }

    /// Zero-initialized heap slots for a NEW of `ty` (object or REF).
    fn new_slots(&self, ty: TypeId) -> Vec<Value> {
        match self.prog.types.kind(ty) {
            TypeKind::Object { .. } => {
                let mut out = Vec::new();
                for f in self.prog.types.all_fields(ty) {
                    out.extend(self.zero_slots_of(f.ty));
                }
                if out.is_empty() {
                    out.push(Value::Nil);
                }
                out
            }
            TypeKind::Ref { target, .. } => {
                let v = self.zero_slots_of(*target);
                if v.is_empty() {
                    vec![Value::Nil]
                } else {
                    v
                }
            }
            other => panic!("NEW of {other:?}"),
        }
    }

    fn zero_slots_of(&self, ty: TypeId) -> Vec<Value> {
        zero_storage(self.prog, ty, self.prog.types.size_of(ty))
    }
}

/// Zero storage of `size` slots for a value of type `ty` (aggregates are
/// zeroed per component).
fn zero_storage(prog: &Program, ty: TypeId, size: u32) -> Vec<Value> {
    fn fill(prog: &Program, ty: TypeId, out: &mut Vec<Value>) {
        match prog.types.kind(ty) {
            TypeKind::Record { fields } => {
                for f in fields {
                    fill(prog, f.ty, out);
                }
            }
            TypeKind::Array {
                range: Some((lo, hi)),
                elem,
            } => {
                for _ in 0..(hi - lo + 1).max(0) {
                    fill(prog, *elem, out);
                }
            }
            _ => out.push(Value::zero_of(&prog.types, ty)),
        }
    }
    let mut out = Vec::with_capacity(size as usize);
    fill(prog, ty, &mut out);
    while (out.len() as u32) < size.max(1) {
        out.push(Value::Nil);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa_ir::compile_to_ir;

    fn run_src(src: &str) -> RunOutcome {
        let prog = compile_to_ir(src).unwrap();
        run(&prog, &mut NullHook, RunConfig::default()).unwrap()
    }

    #[test]
    fn arithmetic_and_output() {
        let out = run_src(
            "MODULE M;
             VAR x: INTEGER;
             BEGIN
               x := 6 * 7;
               PRINTI(x);
               PRINT(\" ok\");
             END M.",
        );
        assert_eq!(out.output, "42 ok");
    }

    #[test]
    fn control_flow_loops() {
        let out = run_src(
            "MODULE M;
             VAR s: INTEGER;
             BEGIN
               s := 0;
               FOR i := 1 TO 10 DO s := s + i END;
               WHILE s > 50 DO s := s - 3 END;
               REPEAT s := s + 1 UNTIL s >= 51;
               PRINTI(s);
             END M.",
        );
        assert_eq!(out.output, "51");
    }

    #[test]
    fn objects_fields_and_heap_counts() {
        let out = run_src(
            "MODULE M;
             TYPE T = OBJECT f, g: INTEGER; END;
             VAR t: T; x: INTEGER;
             BEGIN
               t := NEW(T);
               t.f := 10; t.g := 32;
               x := t.f + t.g;
               PRINTI(x);
             END M.",
        );
        assert_eq!(out.output, "42");
        assert_eq!(out.counts.heap_stores, 2);
        assert_eq!(out.counts.heap_loads, 2);
        assert_eq!(out.counts.allocs, 1);
    }

    #[test]
    fn open_arrays_and_dope_loads() {
        let out = run_src(
            "MODULE M;
             TYPE A = ARRAY OF INTEGER;
             VAR a: A; s: INTEGER;
             BEGIN
               a := NEW(A, 5);
               FOR i := 0 TO 4 DO a[i] := i END;
               s := 0;
               FOR i := 0 TO 4 DO s := s + a[i] END;
               PRINTI(s); PRINTI(NUMBER(a));
             END M.",
        );
        assert_eq!(out.output, "105");
        // 5 element loads + 5 hidden dope loads (reads) + 5 hidden on the
        // store side + 1 NUMBER load.
        assert_eq!(out.counts.heap_loads, 16);
        assert_eq!(out.counts.heap_stores, 5);
    }

    #[test]
    fn methods_dispatch_dynamically() {
        let out = run_src(
            "MODULE M;
             TYPE
               A = OBJECT METHODS id (): INTEGER := IdA; END;
               B = A OBJECT OVERRIDES id := IdB; END;
             PROCEDURE IdA (self: A): INTEGER = BEGIN RETURN 1 END IdA;
             PROCEDURE IdB (self: B): INTEGER = BEGIN RETURN 2 END IdB;
             VAR a: A;
             BEGIN
               a := NEW(A); PRINTI(a.id());
               a := NEW(B); PRINTI(a.id());
             END M.",
        );
        assert_eq!(out.output, "12");
        assert_eq!(out.counts.method_calls, 2);
    }

    #[test]
    fn var_params_write_back() {
        let out = run_src(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Bump (VAR x: INTEGER) = BEGIN x := x + 1 END Bump;
             VAR t: T; g: INTEGER;
             BEGIN
               t := NEW(T);
               Bump(g); Bump(g);
               Bump(t.f);
               PRINTI(g); PRINTI(t.f);
             END M.",
        );
        assert_eq!(out.output, "21");
    }

    #[test]
    fn with_alias_reads_and_writes() {
        let out = run_src(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T;
             BEGIN
               t := NEW(T);
               WITH w = t.f DO w := 5; w := w + 1 END;
               PRINTI(t.f);
             END M.",
        );
        assert_eq!(out.output, "6");
    }

    #[test]
    fn narrow_and_istype() {
        let out = run_src(
            "MODULE M;
             TYPE T = OBJECT END; S = T OBJECT v: INTEGER; END;
             VAR t: T; s: S;
             BEGIN
               t := NEW(S);
               IF ISTYPE(t, S) THEN
                 s := NARROW(t, S);
                 s.v := 9;
                 PRINTI(s.v);
               END;
             END M.",
        );
        assert_eq!(out.output, "9");
    }

    #[test]
    fn nil_deref_traps() {
        let prog = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; x: INTEGER;
             BEGIN x := t.f; END M.",
        )
        .unwrap();
        let err = run(&prog, &mut NullHook, RunConfig::default()).unwrap_err();
        assert_eq!(err, RuntimeError::NilDeref);
    }

    #[test]
    fn out_of_bounds_traps() {
        let prog = compile_to_ir(
            "MODULE M;
             TYPE A = ARRAY OF INTEGER;
             VAR a: A; x: INTEGER;
             BEGIN a := NEW(A, 3); x := a[3]; END M.",
        )
        .unwrap();
        let err = run(&prog, &mut NullHook, RunConfig::default()).unwrap_err();
        assert_eq!(err, RuntimeError::OutOfBounds);
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let prog = compile_to_ir(
            "MODULE M;
             VAR x: INTEGER;
             BEGIN LOOP x := x + 1 END; END M.",
        )
        .unwrap();
        let err = run(
            &prog,
            &mut NullHook,
            RunConfig {
                fuel: 10_000,
                max_depth: 100,
            },
        )
        .unwrap_err();
        assert_eq!(err, RuntimeError::OutOfFuel);
    }

    #[test]
    fn recursion_and_texts() {
        let out = run_src(
            "MODULE M;
             PROCEDURE Fib (n: INTEGER): INTEGER =
             BEGIN
               IF n < 2 THEN RETURN n END;
               RETURN Fib(n - 1) + Fib(n - 2);
             END Fib;
             VAR t: TEXT;
             BEGIN
               t := \"fib=\" & ITOT(Fib(10));
               PRINT(t);
               PRINTI(TEXTLEN(t));
             END M.",
        );
        assert_eq!(out.output, "fib=556");
    }

    #[test]
    fn records_and_ref_records() {
        let out = run_src(
            "MODULE M;
             TYPE R = RECORD x, y: INTEGER; END; PR = REF R;
             VAR a, b: R; p: PR;
             BEGIN
               a.x := 1; a.y := 2;
               b := a;
               p := NEW(PR);
               p^ := b;
               p^.x := p^.x + 10;
               PRINTI(p^.x); PRINTI(p^.y); PRINTI(b.x);
             END M.",
        );
        assert_eq!(out.output, "1121");
    }

    #[test]
    fn fixed_arrays_in_objects() {
        let out = run_src(
            "MODULE M;
             TYPE Node = OBJECT kids: ARRAY [0..3] OF INTEGER; END;
             VAR n: Node; s: INTEGER;
             BEGIN
               n := NEW(Node);
               FOR i := 0 TO 3 DO n.kids[i] := i * i END;
               s := 0;
               FOR i := 0 TO 3 DO s := s + n.kids[i] END;
               PRINTI(s);
             END M.",
        );
        assert_eq!(out.output, "14");
    }

    #[test]
    fn rle_preserves_program_output() {
        use tbaa::analysis::{Level, Tbaa};
        use tbaa::World;
        let src = "MODULE M;
             TYPE T = OBJECT f: INTEGER; n: T; END;
             VAR h: T; s: INTEGER;
             BEGIN
               h := NEW(T); h.f := 1;
               h.n := NEW(T); h.n.f := 2;
               s := 0;
               FOR i := 1 TO 50 DO
                 s := s + h.f + h.n.f;
               END;
               PRINTI(s);
             END M.";
        let prog = compile_to_ir(src).unwrap();
        let base = run(&prog, &mut NullHook, RunConfig::default()).unwrap();
        let mut opt = compile_to_ir(src).unwrap();
        let analysis = Tbaa::build(&opt, Level::SmFieldTypeRefs, World::Closed);
        let stats = tbaa_opt::rle::run_rle(&mut opt, &analysis);
        let after = run(&opt, &mut NullHook, RunConfig::default()).unwrap();
        assert_eq!(
            base.output, after.output,
            "optimization preserves semantics"
        );
        assert!(stats.removed() > 0);
        assert!(
            after.counts.heap_loads < base.counts.heap_loads,
            "RLE reduces dynamic heap loads: {} -> {}",
            base.counts.heap_loads,
            after.counts.heap_loads
        );
    }
}
