//! The timing model.
//!
//! The paper reports *simulated* execution times on a DEC Alpha 3000-500
//! (21064) normalized to the unoptimized program. We reproduce the shape
//! with a simple in-order dual-issue model fed by the interpreter's
//! counters and a direct-mapped cache:
//!
//! ```text
//! cycles = instructions · CPI_BASE
//!        + loads · LOAD_EXTRA          (load-use latency not covered by CPI)
//!        + load misses · MISS_PENALTY
//!        + stores · STORE_COST         (write buffer)
//! ```
//!
//! Removing a (hitting) heap load saves roughly `CPI_BASE + LOAD_EXTRA`
//! cycles, which is what makes RLE's few-percent improvements come out at
//! the paper's scale.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::interp::{ExecCounts, MemEvent, MemHook};

/// Base cycles per instruction (dual issue ⇒ below 1.0).
pub const CPI_BASE: f64 = 0.75;
/// Extra cycles per load beyond the base CPI (21064 load-use latency).
pub const LOAD_EXTRA: f64 = 1.5;
/// Cycles per primary-cache load miss.
pub const MISS_PENALTY: f64 = 20.0;
/// Cycles per store (write-through buffer).
pub const STORE_COST: f64 = 0.5;

/// A [`MemHook`] that drives the cache with every memory reference.
#[derive(Debug, Default)]
pub struct CacheHook {
    /// The simulated data cache.
    pub cache: Cache,
}

impl CacheHook {
    /// Creates a hook over a cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        CacheHook {
            cache: Cache::new(config),
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats
    }
}

impl MemHook for CacheHook {
    fn access(&mut self, ev: &MemEvent<'_>) {
        if ev.is_load {
            self.cache.load(ev.addr);
        } else {
            self.cache.store(ev.addr);
        }
    }
}

/// Converts counters plus cache statistics into simulated cycles.
pub fn cycles(counts: &ExecCounts, cache: &CacheStats) -> f64 {
    let loads = counts.heap_loads + counts.other_loads;
    let stores = counts.heap_stores + counts.other_stores;
    counts.instructions as f64 * CPI_BASE
        + loads as f64 * LOAD_EXTRA
        + cache.misses as f64 * MISS_PENALTY
        + stores as f64 * STORE_COST
}

/// Runs a program under the cache hook and returns `(counts, cache stats,
/// cycles)`.
///
/// # Errors
///
/// Propagates interpreter runtime errors.
pub fn simulate(
    prog: &tbaa_ir::Program,
    config: crate::interp::RunConfig,
) -> Result<(ExecCounts, CacheStats, f64), crate::interp::RuntimeError> {
    let mut hook = CacheHook::default();
    let outcome = crate::interp::run(prog, &mut hook, config)?;
    let stats = hook.stats();
    let c = cycles(&outcome.counts, &stats);
    Ok((outcome.counts, stats, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::RunConfig;
    use tbaa::analysis::{Level, Tbaa};
    use tbaa::World;
    use tbaa_ir::compile_to_ir;

    #[test]
    fn cycles_scale_with_work() {
        let small = compile_to_ir(
            "MODULE M; VAR s: INTEGER;
             BEGIN FOR i := 1 TO 10 DO s := s + i END; END M.",
        )
        .unwrap();
        let large = compile_to_ir(
            "MODULE M; VAR s: INTEGER;
             BEGIN FOR i := 1 TO 1000 DO s := s + i END; END M.",
        )
        .unwrap();
        let (_, _, c_small) = simulate(&small, RunConfig::default()).unwrap();
        let (_, _, c_large) = simulate(&large, RunConfig::default()).unwrap();
        assert!(c_large > c_small * 10.0);
    }

    #[test]
    fn rle_reduces_cycles_figure_8_shape() {
        let src = "MODULE M;
             TYPE T = OBJECT f: INTEGER; n: T; END;
             VAR h: T; s: INTEGER;
             BEGIN
               h := NEW(T); h.n := NEW(T);
               h.f := 3; h.n.f := 4;
               s := 0;
               FOR i := 1 TO 2000 DO
                 s := s + h.f + h.n.f;
               END;
               PRINTI(s);
             END M.";
        let base = compile_to_ir(src).unwrap();
        let (_, _, c_base) = simulate(&base, RunConfig::default()).unwrap();
        let mut opt = compile_to_ir(src).unwrap();
        let analysis = Tbaa::build(&opt, Level::SmFieldTypeRefs, World::Closed);
        tbaa_opt::rle::run_rle(&mut opt, &analysis);
        let (_, _, c_opt) = simulate(&opt, RunConfig::default()).unwrap();
        let pct = 100.0 * c_opt / c_base;
        assert!(
            pct < 100.0,
            "optimized program should be faster: {pct:.1}% of base"
        );
        assert!(
            pct > 30.0,
            "a loop this load-heavy improves a lot, but not absurdly: {pct:.1}%"
        );
    }

    #[test]
    fn cache_locality_matters() {
        // Sequential traversal of a large array mostly hits after the
        // first touch of each line.
        let prog = compile_to_ir(
            "MODULE M;
             TYPE A = ARRAY OF INTEGER;
             VAR a: A; s: INTEGER;
             BEGIN
               a := NEW(A, 2000);
               FOR i := 0 TO 1999 DO a[i] := i END;
               FOR i := 0 TO 1999 DO s := s + a[i] END;
             END M.",
        )
        .unwrap();
        let (_, stats, _) = simulate(&prog, RunConfig::default()).unwrap();
        assert!(
            stats.miss_ratio() < 0.5,
            "sequential access has locality: {:?}",
            stats
        );
    }
}
