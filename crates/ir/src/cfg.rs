//! Control-flow graph utilities: predecessors, reverse postorder,
//! dominators (Cooper–Harvey–Kennedy), natural loops, and preheader
//! insertion for loop-invariant code motion.

use crate::ir::{Block, BlockId, Function, Terminator};
use std::collections::{HashMap, HashSet};

/// Analysis view of one function's CFG.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successors of each block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors of each block.
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry (unreachable blocks are
    /// excluded).
    pub rpo: Vec<BlockId>,
    /// Immediate dominator of each block (entry's idom is itself);
    /// `None` for unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
    /// Position of each block in `rpo` (usize::MAX if unreachable).
    rpo_pos: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG for a function.
    pub fn new(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, b) in func.blocks.iter().enumerate() {
            for s in b.term.successors() {
                succs[i].push(s);
                preds[s.0 as usize].push(BlockId(i as u32));
            }
        }
        // Reverse postorder via iterative DFS.
        let mut visited = vec![false; n];
        let mut post = Vec::new();
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = &succs[b.0 as usize];
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.0 as usize] = i;
        }
        let mut cfg = Cfg {
            succs,
            preds,
            rpo,
            idom: vec![None; n],
            rpo_pos,
        };
        cfg.compute_dominators();
        cfg
    }

    fn compute_dominators(&mut self) {
        // Cooper, Harvey & Kennedy, "A simple, fast dominance algorithm".
        let entry = BlockId(0);
        self.idom[0] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in self.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &self.preds[b.0 as usize] {
                    if self.idom[p.0 as usize].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => self.intersect(p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if self.idom[b.0 as usize] != Some(ni) {
                        self.idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
    }

    fn intersect(&self, a: BlockId, b: BlockId) -> BlockId {
        let mut f1 = a;
        let mut f2 = b;
        while f1 != f2 {
            while self.rpo_pos[f1.0 as usize] > self.rpo_pos[f2.0 as usize] {
                f1 = self.idom[f1.0 as usize].expect("reachable");
            }
            while self.rpo_pos[f2.0 as usize] > self.rpo_pos[f1.0 as usize] {
                f2 = self.idom[f2.0 as usize].expect("reachable");
            }
        }
        f1
    }

    /// Whether `a` dominates `b`.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_pos[b.0 as usize] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let id = self.idom[cur.0 as usize].expect("reachable");
            if id == cur {
                return false; // reached the entry
            }
            cur = id;
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.0 as usize] != usize::MAX
    }

    /// Finds all natural loops: back edges `latch -> header` where the
    /// header dominates the latch, with bodies merged per header.
    pub fn natural_loops(&self) -> Vec<NaturalLoop> {
        let mut by_header: HashMap<BlockId, NaturalLoop> = HashMap::new();
        for (i, ss) in self.succs.iter().enumerate() {
            let latch = BlockId(i as u32);
            if !self.reachable(latch) {
                continue;
            }
            for &header in ss {
                if self.dominates(header, latch) {
                    let l = by_header.entry(header).or_insert_with(|| NaturalLoop {
                        header,
                        latches: Vec::new(),
                        body: HashSet::new(),
                    });
                    l.latches.push(latch);
                    // Body: header plus everything that reaches the latch
                    // without passing through the header.
                    l.body.insert(header);
                    let mut stack = vec![latch];
                    while let Some(b) = stack.pop() {
                        if l.body.insert(b) {
                            for &p in &self.preds[b.0 as usize] {
                                stack.push(p);
                            }
                        }
                    }
                }
            }
        }
        let mut loops: Vec<NaturalLoop> = by_header.into_values().collect();
        // Inner loops first (smaller bodies), stable for determinism.
        loops.sort_by_key(|l| (l.body.len(), l.header));
        loops
    }
}

/// Post-dominance information: `a` post-dominates `b` when every path
/// from `b` to function exit passes through `a`. Computed over the
/// reversed CFG with a virtual exit joining all `Return` blocks.
#[derive(Debug, Clone)]
pub struct PostDoms {
    /// Immediate post-dominator per block (`None` if the block cannot
    /// reach an exit, e.g. an infinite loop).
    ipdom: Vec<Option<u32>>,
    rpo_pos: Vec<usize>,
    /// Id of the virtual exit (== number of real blocks).
    exit: u32,
}

impl PostDoms {
    /// Computes post-dominators from a CFG.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.succs.len();
        let exit = n as u32;
        // Reverse graph over n+1 nodes: edges succ->pred, plus exit->returns.
        let mut rsuccs: Vec<Vec<u32>> = vec![Vec::new(); n + 1]; // preds in reverse graph = succs in original
        let mut rpreds: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
        for (i, ss) in cfg.succs.iter().enumerate() {
            if ss.is_empty() {
                // Return block: edge block -> exit in the original sense,
                // i.e. exit -> block in the reverse graph.
                rsuccs[exit as usize].push(i as u32);
                rpreds[i].push(exit);
            }
            for s in ss {
                // original edge i -> s becomes reverse edge s -> i
                rsuccs[s.0 as usize].push(i as u32);
                rpreds[i].push(s.0);
            }
        }
        // RPO over the reverse graph from the virtual exit.
        let mut visited = vec![false; n + 1];
        let mut post = Vec::new();
        let mut stack: Vec<(u32, usize)> = vec![(exit, 0)];
        visited[exit as usize] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = &rsuccs[b as usize];
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if !visited[s as usize] {
                    visited[s as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<u32> = post.into_iter().rev().collect();
        let mut rpo_pos = vec![usize::MAX; n + 1];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b as usize] = i;
        }
        let mut ipdom: Vec<Option<u32>> = vec![None; n + 1];
        ipdom[exit as usize] = Some(exit);
        let intersect = |ipdom: &[Option<u32>], rpo_pos: &[usize], a: u32, b: u32| -> u32 {
            let (mut f1, mut f2) = (a, b);
            while f1 != f2 {
                while rpo_pos[f1 as usize] > rpo_pos[f2 as usize] {
                    f1 = ipdom[f1 as usize].expect("reachable");
                }
                while rpo_pos[f2 as usize] > rpo_pos[f1 as usize] {
                    f2 = ipdom[f2 as usize].expect("reachable");
                }
            }
            f1
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_ip: Option<u32> = None;
                for &p in &rpreds[b as usize] {
                    if ipdom[p as usize].is_none() {
                        continue;
                    }
                    new_ip = Some(match new_ip {
                        None => p,
                        Some(cur) => intersect(&ipdom, &rpo_pos, p, cur),
                    });
                }
                if let Some(ni) = new_ip {
                    if ipdom[b as usize] != Some(ni) {
                        ipdom[b as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        PostDoms {
            ipdom,
            rpo_pos,
            exit,
        }
    }

    /// Whether `a` post-dominates `b`.
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_pos[b.0 as usize] == usize::MAX {
            return false;
        }
        let mut cur = b.0;
        loop {
            if cur == a.0 {
                return true;
            }
            match self.ipdom[cur as usize] {
                Some(ip) if ip != cur => cur = ip,
                _ => return false,
            }
            if cur == self.exit {
                return a.0 == self.exit;
            }
        }
    }
}

/// A natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (dominates the whole body).
    pub header: BlockId,
    /// The latch blocks (sources of back edges).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including the header.
    pub body: HashSet<BlockId>,
}

impl NaturalLoop {
    /// Whether the loop contains a block.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// Inserts (or finds) a preheader for the loop headed at `header`: a block
/// that is the unique non-loop predecessor of the header. Returns the
/// preheader id. The function's CFG must be rebuilt afterwards.
pub fn ensure_preheader(func: &mut Function, cfg: &Cfg, lp: &NaturalLoop) -> BlockId {
    let header = lp.header;
    let outside_preds: Vec<BlockId> = cfg.preds[header.0 as usize]
        .iter()
        .copied()
        .filter(|p| !lp.contains(*p))
        .collect();
    if outside_preds.len() == 1 {
        let p = outside_preds[0];
        // Usable as a preheader only if its sole successor is the header.
        if cfg.succs[p.0 as usize].len() == 1 {
            return p;
        }
    }
    // Create a fresh preheader.
    let ph = BlockId(func.blocks.len() as u32);
    func.blocks.push(Block {
        instrs: Vec::new(),
        term: Terminator::Jump(header),
    });
    for &p in &outside_preds {
        let term = &mut func.blocks[p.0 as usize].term;
        match term {
            Terminator::Jump(t) => {
                if *t == header {
                    *t = ph;
                }
            }
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                if *then_bb == header {
                    *then_bb = ph;
                }
                if *else_bb == header {
                    *else_bb = ph;
                }
            }
            Terminator::Return(_) => {}
        }
    }
    ph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Operand, VarClass, VarDecl};
    use mini_m3::types::TypeId;

    /// Builds a function with the given edges (blocks have no instructions).
    fn make_func(n: usize, edges: &[(u32, u32)]) -> Function {
        let mut blocks: Vec<Block> = (0..n).map(|_| Block::new()).collect();
        // Group edges by source.
        let mut by_src: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(a, b) in edges {
            by_src.entry(a).or_default().push(b);
        }
        for (src, dsts) in by_src {
            let term = match dsts.len() {
                1 => Terminator::Jump(BlockId(dsts[0])),
                2 => Terminator::Branch {
                    cond: Operand::ImmBool(true),
                    then_bb: BlockId(dsts[0]),
                    else_bb: BlockId(dsts[1]),
                },
                _ => panic!("at most two successors"),
            };
            blocks[src as usize].term = term;
        }
        Function {
            name: "t".into(),
            n_params: 0,
            param_modes: vec![],
            ret: None,
            vars: vec![VarDecl {
                name: "x".into(),
                ty: TypeId(0),
                size: 1,
                class: VarClass::Register,
            }],
            blocks,
            n_regs: 0,
        }
    }

    #[test]
    fn straight_line_dominators() {
        // 0 -> 1 -> 2
        let f = make_func(3, &[(0, 1), (1, 2)]);
        let cfg = Cfg::new(&f);
        assert!(cfg.dominates(BlockId(0), BlockId(2)));
        assert!(cfg.dominates(BlockId(1), BlockId(2)));
        assert!(!cfg.dominates(BlockId(2), BlockId(1)));
        assert_eq!(cfg.idom[2], Some(BlockId(1)));
    }

    #[test]
    fn diamond_dominators() {
        // 0 -> {1,2} -> 3
        let f = make_func(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.idom[3], Some(BlockId(0)));
        assert!(!cfg.dominates(BlockId(1), BlockId(3)));
        assert!(cfg.dominates(BlockId(0), BlockId(3)));
    }

    #[test]
    fn simple_loop_detected() {
        // 0 -> 1(header) -> {2(body), 3(exit)}, 2 -> 1
        let f = make_func(4, &[(0, 1), (1, 2), (1, 3), (2, 1)]);
        let cfg = Cfg::new(&f);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert!(l.contains(BlockId(1)) && l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(3)));
    }

    #[test]
    fn nested_loops_sorted_inner_first() {
        // outer: 1..4, inner: 2..3
        // 0->1, 1->2, 2->3, 3->2 (inner back), 3->4, 4->1 (outer back), 1->5
        let f = make_func(6, &[(0, 1), (1, 2), (1, 5), (2, 3), (3, 2), (3, 4), (4, 1)]);
        let cfg = Cfg::new(&f);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 2);
        assert!(loops[0].body.len() < loops[1].body.len());
        assert_eq!(loops[0].header, BlockId(2));
        assert_eq!(loops[1].header, BlockId(1));
        assert!(loops[1].body.contains(&BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let f = make_func(3, &[(0, 1)]); // block 2 unreachable
        let cfg = Cfg::new(&f);
        assert!(cfg.reachable(BlockId(1)));
        assert!(!cfg.reachable(BlockId(2)));
        assert!(!cfg.dominates(BlockId(0), BlockId(2)));
    }

    #[test]
    fn post_dominators_diamond() {
        // 0 -> {1,2} -> 3 (return)
        let f = make_func(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let cfg = Cfg::new(&f);
        let pd = PostDoms::new(&cfg);
        assert!(pd.post_dominates(BlockId(3), BlockId(0)));
        assert!(pd.post_dominates(BlockId(3), BlockId(1)));
        assert!(!pd.post_dominates(BlockId(1), BlockId(0)));
        assert!(pd.post_dominates(BlockId(0), BlockId(0)));
    }

    #[test]
    fn post_dominators_with_loop() {
        // 0 -> 1 -> 2 -> {1, 3}; 3 returns.
        let f = make_func(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let cfg = Cfg::new(&f);
        let pd = PostDoms::new(&cfg);
        assert!(pd.post_dominates(BlockId(3), BlockId(0)));
        assert!(pd.post_dominates(BlockId(2), BlockId(1)));
        assert!(!pd.post_dominates(BlockId(1), BlockId(3)));
    }

    #[test]
    fn infinite_loop_has_no_postdominators() {
        // 0 -> 1 -> 1 (never returns); block 2 unreachable return.
        let f = make_func(3, &[(0, 1), (1, 1)]);
        let cfg = Cfg::new(&f);
        let pd = PostDoms::new(&cfg);
        assert!(!pd.post_dominates(BlockId(2), BlockId(0)));
    }

    #[test]
    fn preheader_created_when_needed() {
        // 0 -> {1, 3}; 1(header) -> 2, 2 -> 1; 1 -> 3 would complicate; use:
        // 0 -> 1, 1 -> 2, 2 -> {1, 3}; entry branches so 0 is jump-only: ok.
        let mut f = make_func(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let cfg = Cfg::new(&f);
        let loops = cfg.natural_loops();
        let ph = ensure_preheader(&mut f, &cfg, &loops[0]);
        // Block 0 jumps straight to the header, so it serves as preheader.
        assert_eq!(ph, BlockId(0));

        // Now a case where the outside predecessor branches.
        let mut g = make_func(4, &[(0, 1), (0, 3), (1, 2), (2, 1)]);
        let cfg = Cfg::new(&g);
        let loops = cfg.natural_loops();
        let before = g.blocks.len();
        let ph = ensure_preheader(&mut g, &cfg, &loops[0]);
        assert_eq!(ph.0 as usize, before, "fresh block appended");
        // The branch edge was redirected.
        match &g.blocks[0].term {
            Terminator::Branch { then_bb, .. } => assert_eq!(*then_bb, ph),
            other => panic!("unexpected terminator {other:?}"),
        }
    }
}
