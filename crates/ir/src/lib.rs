//! # tbaa-ir — typed IR for the TBAA reproduction
//!
//! This crate lowers checked MiniM3 modules (from the [`mini_m3`] crate) to
//! a register IR in which **every heap memory reference is one instruction
//! annotated with its canonical access path**. That property is what lets
//! the rest of the system reproduce the paper:
//!
//! * the alias analyses (`tbaa` crate) answer `may_alias(ap₁, ap₂)`;
//! * redundant load elimination (`tbaa-opt` crate) matches and moves loads
//!   by access path;
//! * the simulator (`tbaa-sim` crate) counts exactly one memory reference
//!   per executed `LoadMem`/`StoreMem`.
//!
//! Lowering additionally collects the program facts the analyses need:
//! `AddressTaken` (§2.3), pointer-assignment *merges* (§2.4), and the set
//! of allocated types (method resolution).
//!
//! ## Example
//!
//! ```
//! let prog = tbaa_ir::compile_to_ir(
//!     "MODULE M;
//!      TYPE T = OBJECT f: INTEGER; END;
//!      VAR t: T; x: INTEGER;
//!      BEGIN t := NEW(T); x := t.f; END M.")?;
//! assert_eq!(prog.heap_ref_sites().len(), 1); // the load of t.f
//! # Ok::<(), mini_m3::Diagnostics>(())
//! ```

pub mod cfg;
pub mod ir;
pub mod lower;
pub mod path;
pub mod pretty;
pub mod symbols;

pub use ir::{Function, HeapRefRows, Instr, Program};
pub use lower::{
    effective_workers, effective_workers_for, lower_parallel, lower_parallel_with_workers,
    lower_unit_detached, lower_units_detached, DetachedUnit, FuncEffects, FuncLowering,
    ModuleLowerer,
};
pub use path::{AccessPath, ApId, ApTable, ApView, FuncId, VarId};
pub use symbols::{Symbol, SymbolTable};

/// Compiles MiniM3 source all the way to IR.
///
/// # Errors
///
/// Returns diagnostics from any phase (lex, parse, check, lower).
pub fn compile_to_ir(source: &str) -> Result<Program, mini_m3::Diagnostics> {
    let checked = mini_m3::compile(source)?;
    lower::lower(checked)
}

/// [`compile_to_ir`] with function units lowered on up to `threads`
/// scoped worker threads. Output is byte-identical to the serial path at
/// any thread count; one effective worker (e.g. on a single-core host)
/// takes the serial path with zero thread overhead.
///
/// # Errors
///
/// Returns diagnostics from any phase (lex, parse, check, lower).
pub fn compile_to_ir_with_threads(
    source: &str,
    threads: usize,
) -> Result<Program, mini_m3::Diagnostics> {
    let checked = mini_m3::compile(source)?;
    lower::lower_parallel(checked, threads)
}

#[cfg(test)]
mod tests {
    #[test]
    fn compile_to_ir_smoke() {
        let p = crate::compile_to_ir("MODULE M; VAR x: INTEGER; BEGIN x := 3 END M.").unwrap();
        assert_eq!(p.funcs.len(), 1);
    }
}
