//! Access paths.
//!
//! An *access path* (AP) is a non-empty string of memory references such as
//! `a^.b[i].c` (§2.1 of the paper, after Larus & Hilfinger). Every heap load
//! and store in the IR carries the [`ApId`] of its canonical source-level
//! access path; the alias analyses answer queries over pairs of APs, and
//! redundant load elimination uses AP identity to recognize repeated loads.
//!
//! APs are interned in an [`ApTable`]; two syntactically identical paths in
//! the same function receive the same id.

use crate::symbols::{Symbol, SymbolTable};
use mini_m3::check::GlobalId;
use mini_m3::types::TypeId;
use std::collections::HashMap;
use std::fmt;

/// Interned access path identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApId(pub u32);

impl fmt::Display for ApId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ap{}", self.0)
    }
}

/// Identifier of a function in the program (defined in `crate::ir`, used
/// here to scope local roots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A variable slot within one function's frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Where an access path starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApRoot {
    /// A local variable of `func`.
    Local {
        /// The owning function.
        func: FuncId,
        /// The variable.
        var: VarId,
    },
    /// A module-level variable.
    Global(GlobalId),
    /// An anonymous intermediate value (e.g. the result of a call used as
    /// the base of a field access). Each temp root is unique, so two temp
    /// paths are never the *same* path, but they still carry a static type
    /// for alias queries.
    Temp(u32),
}

/// A canonical subscript expression inside an access path.
///
/// Redundant load elimination may only merge two subscripted paths when the
/// subscripts are syntactically identical; alias analysis, by contrast,
/// ignores subscripts entirely (case 6 of FieldTypeDecl).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ApIndex {
    /// A compile-time constant index.
    Const(i64),
    /// A local variable.
    Var(VarId),
    /// A global variable.
    Global(GlobalId),
    /// `lhs op rhs` over canonical indices (e.g. `i + 1`).
    Bin(mini_m3::ast::BinOp, Box<ApIndex>, Box<ApIndex>),
    /// An arbitrary expression; unique, never equal to any other index.
    Opaque(u32),
}

impl ApIndex {
    /// Whether the index mentions local variable `v`.
    pub fn mentions_var(&self, v: VarId) -> bool {
        match self {
            ApIndex::Var(x) => *x == v,
            ApIndex::Bin(_, l, r) => l.mentions_var(v) || r.mentions_var(v),
            _ => false,
        }
    }

    /// Whether the index mentions global `g`.
    pub fn mentions_global(&self, g: GlobalId) -> bool {
        match self {
            ApIndex::Global(x) => *x == g,
            ApIndex::Bin(_, l, r) => l.mentions_global(g) || r.mentions_global(g),
            _ => false,
        }
    }

    /// Whether the index is canonical (reusable): opaque indices are not.
    pub fn is_canonical(&self) -> bool {
        match self {
            ApIndex::Opaque(_) => false,
            ApIndex::Bin(_, l, r) => l.is_canonical() && r.is_canonical(),
            _ => true,
        }
    }
}

/// One step of an access path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ApStep {
    /// `.name` — the paper's *Qualify*. `base_ty` is the declared type of
    /// the object/record being qualified, `ty` the declared field type.
    Field {
        /// Interned field name (field names are globally meaningful, as the
        /// paper assumes distinct fields have distinct names per declaring
        /// type), so step comparisons are integer ops.
        name: Symbol,
        /// Declared type of the base.
        base_ty: TypeId,
        /// Declared type of the field.
        ty: TypeId,
    },
    /// `^` — the paper's *Dereference*. `ty` is the referent type.
    Deref {
        /// Declared referent type.
        ty: TypeId,
    },
    /// `[index]` — the paper's *Subscript*. `base_ty` is the array type,
    /// `ty` the element type.
    Index {
        /// Canonical subscript.
        index: ApIndex,
        /// Declared array type.
        base_ty: TypeId,
        /// Declared element type.
        ty: TypeId,
    },
    /// The hidden `#length` slot of an open array (`NUMBER(a)` and implicit
    /// bounds checks). `base_ty` is the open array type.
    DopeLen {
        /// Declared array type.
        base_ty: TypeId,
    },
}

impl ApStep {
    /// The declared type of the value this step produces.
    pub fn ty(&self, integer: TypeId) -> TypeId {
        match self {
            ApStep::Field { ty, .. } | ApStep::Deref { ty } | ApStep::Index { ty, .. } => *ty,
            ApStep::DopeLen { .. } => integer,
        }
    }
}

/// A full access path: a root plus a sequence of steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessPath {
    /// The root variable (or temp).
    pub root: ApRoot,
    /// Declared type of the root.
    pub root_ty: TypeId,
    /// The steps, outermost last (`a.b^` is `[Field b, Deref]`).
    pub steps: Vec<ApStep>,
}

impl AccessPath {
    /// The declared (static) type of the whole path — `Type(p)` in the
    /// paper. `integer` is the table's INTEGER type (for dope slots).
    pub fn ty(&self, integer: TypeId) -> TypeId {
        self.steps.last().map_or(self.root_ty, |s| s.ty(integer))
    }

    /// Whether this path dereferences the heap at all (paths with no steps
    /// are plain variable accesses and never appear on loads).
    pub fn is_heap(&self) -> bool {
        !self.steps.is_empty()
    }

    /// Whether every subscript in the path is canonical, i.e. the path can
    /// be recognized as "the same" at two program points.
    pub fn is_canonical(&self) -> bool {
        self.steps.iter().all(|s| match s {
            ApStep::Index { index, .. } => index.is_canonical(),
            _ => true,
        }) && !matches!(self.root, ApRoot::Temp(_))
    }

    /// Whether the path's value depends on local variable `v` (as its root
    /// or inside a subscript).
    pub fn mentions_var(&self, v: VarId) -> bool {
        if let ApRoot::Local { var, .. } = self.root {
            if var == v {
                return true;
            }
        }
        self.steps.iter().any(|s| match s {
            ApStep::Index { index, .. } => index.mentions_var(v),
            _ => false,
        })
    }

    /// Whether the path's value depends on global `g`.
    pub fn mentions_global(&self, g: GlobalId) -> bool {
        if let ApRoot::Global(x) = self.root {
            if x == g {
                return true;
            }
        }
        self.steps.iter().any(|s| match s {
            ApStep::Index { index, .. } => index.mentions_global(g),
            _ => false,
        })
    }

    /// The prefix path with the last step removed, or `None` for a bare root.
    ///
    /// This clones the step vector; query-time code should prefer
    /// [`AccessPath::view`] + [`ApView::parent`], which walk prefixes
    /// without allocating.
    pub fn parent(&self) -> Option<AccessPath> {
        if self.steps.is_empty() {
            return None;
        }
        let mut p = self.clone();
        p.steps.pop();
        Some(p)
    }

    /// A borrowed view of the whole path, for allocation-free prefix walks.
    pub fn view(&self) -> ApView<'_> {
        ApView {
            root: &self.root,
            root_ty: self.root_ty,
            steps: &self.steps,
        }
    }
}

/// A borrowed view of an access path (or one of its prefixes).
///
/// `FieldTypeDecl` recurses from a path to its parent on every case-2/6
/// query; materializing each parent through [`AccessPath::parent`] clones
/// the whole step vector. An `ApView` is root + type + a step *slice*, so
/// [`ApView::parent`] is just a slice shrink — zero allocation, usable by
/// both the naive oracle and the compiled engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApView<'a> {
    /// The root variable (or temp).
    pub root: &'a ApRoot,
    /// Declared type of the root.
    pub root_ty: TypeId,
    /// The step prefix this view covers.
    pub steps: &'a [ApStep],
}

impl<'a> ApView<'a> {
    /// The declared (static) type of the viewed prefix — `Type(p)`.
    pub fn ty(&self, integer: TypeId) -> TypeId {
        self.steps.last().map_or(self.root_ty, |s| s.ty(integer))
    }

    /// The last step of the viewed prefix (`None` for a bare root).
    pub fn last(&self) -> Option<&'a ApStep> {
        self.steps.last()
    }

    /// The view with the last step removed, or `None` for a bare root.
    pub fn parent(&self) -> Option<ApView<'a>> {
        let (_, init) = self.steps.split_last()?;
        Some(ApView {
            root: self.root,
            root_ty: self.root_ty,
            steps: init,
        })
    }

    /// Whether the view is rooted at an anonymous temp.
    pub fn is_temp_rooted(&self) -> bool {
        matches!(self.root, ApRoot::Temp(_))
    }
}

/// Interning table for access paths.
#[derive(Debug, Clone, Default)]
pub struct ApTable {
    paths: Vec<AccessPath>,
    intern: HashMap<AccessPath, ApId>,
    next_temp: u32,
    next_opaque: u32,
}

impl ApTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table with room for `cap` paths, so cold-compile
    /// interning does not rehash/regrow mid-module.
    pub fn with_capacity(cap: usize) -> Self {
        ApTable {
            paths: Vec::with_capacity(cap),
            intern: HashMap::with_capacity(cap),
            next_temp: 0,
            next_opaque: 0,
        }
    }

    /// Interns a path, returning its id.
    pub fn intern(&mut self, path: AccessPath) -> ApId {
        if let Some(&id) = self.intern.get(&path) {
            return id;
        }
        let id = ApId(self.paths.len() as u32);
        self.paths.push(path.clone());
        self.intern.insert(path, id);
        id
    }

    /// The path for an id.
    pub fn path(&self, id: ApId) -> &AccessPath {
        &self.paths[id.0 as usize]
    }

    /// Number of interned paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Iterates over `(id, path)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ApId, &AccessPath)> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, p)| (ApId(i as u32), p))
    }

    /// A fresh unique temp root id.
    pub fn fresh_temp(&mut self) -> u32 {
        self.next_temp += 1;
        self.next_temp
    }

    /// A fresh unique opaque-index id.
    pub fn fresh_opaque(&mut self) -> u32 {
        self.next_opaque += 1;
        self.next_opaque
    }

    /// Current temp-counter position (how many temp roots were handed out).
    pub fn temp_mark(&self) -> u32 {
        self.next_temp
    }

    /// Current opaque-counter position.
    pub fn opaque_mark(&self) -> u32 {
        self.next_opaque
    }

    /// Advances the fresh-id counters as if `temps` temp roots and
    /// `opaques` opaque indices had been handed out. Incremental replay
    /// uses this to restore the counter state a cached function's lowering
    /// left behind without re-running it.
    pub fn advance_counters(&mut self, temps: u32, opaques: u32) {
        self.next_temp += temps;
        self.next_opaque += opaques;
    }

    /// Renders a path for humans, with `names` supplying root names and
    /// `symbols` resolving interned field names.
    pub fn display(
        &self,
        id: ApId,
        symbols: &SymbolTable,
        root_name: impl Fn(&ApRoot) -> String,
    ) -> String {
        let p = self.path(id);
        let mut out = root_name(&p.root);
        for s in &p.steps {
            match s {
                ApStep::Field { name, .. } => {
                    out.push('.');
                    out.push_str(symbols.resolve(*name));
                }
                ApStep::Deref { .. } => out.push('^'),
                ApStep::Index { index, .. } => {
                    out.push('[');
                    out.push_str(&display_index(index));
                    out.push(']');
                }
                ApStep::DopeLen { .. } => out.push_str(".#len"),
            }
        }
        out
    }
}

fn display_index(i: &ApIndex) -> String {
    match i {
        ApIndex::Const(c) => c.to_string(),
        ApIndex::Var(v) => v.to_string(),
        ApIndex::Global(g) => format!("g{}", g.0),
        ApIndex::Bin(op, l, r) => format!("{} {op} {}", display_index(l), display_index(r)),
        ApIndex::Opaque(n) => format!("?{n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int() -> TypeId {
        TypeId(0)
    }

    fn sample_path() -> AccessPath {
        AccessPath {
            root: ApRoot::Local {
                func: FuncId(0),
                var: VarId(3),
            },
            root_ty: TypeId(7),
            steps: vec![
                ApStep::Field {
                    name: Symbol(0),
                    base_ty: TypeId(7),
                    ty: TypeId(8),
                },
                ApStep::Deref { ty: TypeId(9) },
            ],
        }
    }

    #[test]
    fn interning_is_stable() {
        let mut t = ApTable::new();
        let a = t.intern(sample_path());
        let b = t.intern(sample_path());
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_paths_get_distinct_ids() {
        let mut t = ApTable::new();
        let a = t.intern(sample_path());
        let mut other = sample_path();
        other.steps.pop();
        let b = t.intern(other);
        assert_ne!(a, b);
    }

    #[test]
    fn path_type_is_last_step() {
        let p = sample_path();
        assert_eq!(p.ty(int()), TypeId(9));
        let bare = AccessPath {
            root: ApRoot::Global(GlobalId(0)),
            root_ty: TypeId(5),
            steps: vec![],
        };
        assert_eq!(bare.ty(int()), TypeId(5));
    }

    #[test]
    fn mentions_var_checks_root_and_indices() {
        let mut p = sample_path();
        assert!(p.mentions_var(VarId(3)));
        assert!(!p.mentions_var(VarId(4)));
        p.steps.push(ApStep::Index {
            index: ApIndex::Var(VarId(4)),
            base_ty: TypeId(10),
            ty: TypeId(0),
        });
        assert!(p.mentions_var(VarId(4)));
    }

    #[test]
    fn canonicality() {
        let mut p = sample_path();
        assert!(p.is_canonical());
        p.steps.push(ApStep::Index {
            index: ApIndex::Opaque(1),
            base_ty: TypeId(10),
            ty: TypeId(0),
        });
        assert!(!p.is_canonical());
        let temp = AccessPath {
            root: ApRoot::Temp(1),
            root_ty: TypeId(5),
            steps: vec![],
        };
        assert!(!temp.is_canonical());
    }

    #[test]
    fn bin_index_equality() {
        use mini_m3::ast::BinOp;
        let i1 = ApIndex::Bin(
            BinOp::Add,
            Box::new(ApIndex::Var(VarId(1))),
            Box::new(ApIndex::Const(1)),
        );
        let i2 = ApIndex::Bin(
            BinOp::Add,
            Box::new(ApIndex::Var(VarId(1))),
            Box::new(ApIndex::Const(1)),
        );
        assert_eq!(i1, i2);
        assert!(i1.mentions_var(VarId(1)));
        assert!(i1.is_canonical());
    }

    #[test]
    fn parent_strips_last_step() {
        let p = sample_path();
        let parent = p.parent().unwrap();
        assert_eq!(parent.steps.len(), 1);
        assert!(parent.parent().unwrap().parent().is_none());
    }

    #[test]
    fn view_parent_matches_owned_parent() {
        let p = sample_path();
        let v = p.view();
        assert_eq!(v.ty(int()), p.ty(int()));
        let vp = v.parent().unwrap();
        let op = p.parent().unwrap();
        assert_eq!(vp.steps, op.steps.as_slice());
        assert_eq!(vp.ty(int()), op.ty(int()));
        assert!(vp.parent().unwrap().parent().is_none());
        assert!(!v.is_temp_rooted());
    }

    #[test]
    fn display_renders_readably() {
        let mut syms = SymbolTable::new();
        assert_eq!(syms.intern("b"), Symbol(0));
        let mut t = ApTable::new();
        let id = t.intern(sample_path());
        let s = t.display(id, &syms, |_| "a".to_string());
        assert_eq!(s, "a.b^");
    }
}
