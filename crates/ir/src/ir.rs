//! The typed register IR.
//!
//! Each function is a control-flow graph of basic blocks over two kinds of
//! storage: *registers* (expression temporaries, always modeled as machine
//! registers) and *slots* (named locals and compiler scratch variables;
//! scalar slots whose address is never taken are also register-class, the
//! rest live on the stack). Heap accesses are explicit [`Instr::LoadMem`] /
//! [`Instr::StoreMem`] instructions, each performing exactly one memory
//! reference and carrying the [`ApId`] of its canonical source access path.
//!
//! Hidden dope-vector loads (bounds checks on open arrays) are marked
//! [`Instr::LoadMem::hidden`]; they are invisible to redundant load
//! elimination because they are implicit in the high-level IR — the
//! *Encapsulation* category of the paper's Figure 10.

use crate::path::{ApId, ApTable, FuncId, VarId};
use crate::symbols::{Symbol, SymbolTable};
use mini_m3::ast::{BinOp, UnOp};
use mini_m3::check::GlobalId;
use mini_m3::types::{ParamMode, TypeId, TypeTable};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A virtual register (expression temporary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An operand: a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register contents.
    Reg(Reg),
    /// Integer immediate.
    ImmInt(i64),
    /// Boolean immediate.
    ImmBool(bool),
    /// Character immediate.
    ImmChar(char),
    /// NIL immediate.
    ImmNil,
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::ImmInt(v) => write!(f, "{v}"),
            Operand::ImmBool(b) => write!(f, "{b}"),
            Operand::ImmChar(c) => write!(f, "'{c}'"),
            Operand::ImmNil => write!(f, "NIL"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

/// Base of a slot address: a local frame slot or the global frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotBase {
    /// A local variable (start slot for aggregates).
    Local(VarId),
    /// A global variable (start slot for aggregates).
    Global(GlobalId),
}

/// A (possibly computed) address within stack or global storage:
/// `base + offset + Σ (indexᵢ - loᵢ) · scaleᵢ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SlotAddr {
    /// The variable whose storage is addressed.
    pub base: SlotBase,
    /// Constant slot offset (record fields).
    pub offset: u32,
    /// Dynamic index components `(index, lo, scale)` for fixed arrays.
    pub indices: Vec<(Operand, i64, u32)>,
}

impl SlotAddr {
    /// A plain scalar variable address.
    pub fn var(base: SlotBase) -> Self {
        SlotAddr {
            base,
            offset: 0,
            indices: Vec::new(),
        }
    }

    /// Whether the address is a simple whole-variable access.
    pub fn is_simple(&self) -> bool {
        self.offset == 0 && self.indices.is_empty()
    }
}

/// A heap address: `cell(base) + offset + Σ (indexᵢ - loᵢ) · scaleᵢ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemAddr {
    /// The reference value addressing the heap cell.
    pub base: Operand,
    /// Constant slot offset within the cell.
    pub offset: u32,
    /// Dynamic index components `(index, lo, scale)`.
    pub indices: Vec<(Operand, i64, u32)>,
}

/// Intrinsic operations (builtins with no control flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntrinsicOp {
    /// `ORD(c)`.
    Ord,
    /// `CHR(i)`.
    Chr,
    /// `ABS(i)`.
    Abs,
    /// `MIN(a, b)`.
    Min,
    /// `MAX(a, b)`.
    Max,
    /// `TEXTLEN(t)`.
    TextLen,
    /// `TEXTCHAR(t, i)`.
    TextChar,
    /// `ITOT(i)`.
    IntToText,
    /// `CTOT(c)`.
    CharToText,
    /// `&` on texts.
    TextConcat,
    /// `PRINT(t)`.
    Print,
    /// `PRINTI(i)`.
    PrintInt,
}

/// One IR instruction. Every heap memory reference is a distinct
/// instruction, so dynamic load counts fall directly out of execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst := text-pool[text]`.
    ConstText {
        /// Destination register.
        dst: Reg,
        /// Index into [`Program::texts`].
        text: u32,
    },
    /// `dst := src`.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst := op src`.
    Un {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: UnOp,
        /// Operand.
        src: Operand,
    },
    /// `dst := lhs op rhs` (no short-circuit; lowering expands AND/OR).
    Bin {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst := slot[addr]` — a stack or global read.
    LoadSlot {
        /// Destination register.
        dst: Reg,
        /// The address.
        addr: SlotAddr,
    },
    /// `slot[addr] := src`.
    StoreSlot {
        /// The address.
        addr: SlotAddr,
        /// Value stored.
        src: Operand,
    },
    /// `dst := heap[addr]` — exactly one heap load, tagged with its access
    /// path.
    LoadMem {
        /// Destination register.
        dst: Reg,
        /// The address.
        addr: MemAddr,
        /// Canonical access path of this reference.
        ap: ApId,
        /// Hidden (dope-vector bounds check) loads are implicit in the
        /// high-level IR and invisible to RLE.
        hidden: bool,
    },
    /// `heap[addr] := src`.
    StoreMem {
        /// The address.
        addr: MemAddr,
        /// Value stored.
        src: Operand,
        /// Canonical access path of this reference.
        ap: ApId,
    },
    /// `dst := *loc` — read through a location value (VAR parameter).
    LoadInd {
        /// Destination register.
        dst: Reg,
        /// Operand holding a location value.
        loc: Operand,
    },
    /// `*loc := src`.
    StoreInd {
        /// Operand holding a location value.
        loc: Operand,
        /// Value stored.
        src: Operand,
    },
    /// `dst := &slot[addr]` — take the address of a stack/global location
    /// (passing a local by VAR).
    TakeAddrSlot {
        /// Destination register (receives a location value).
        dst: Reg,
        /// The address.
        addr: SlotAddr,
    },
    /// `dst := &heap[addr]` — take the address of a heap location. This is
    /// what makes `AddressTaken(ap)` true.
    TakeAddrMem {
        /// Destination register (receives a location value).
        dst: Reg,
        /// The address.
        addr: MemAddr,
        /// The access path whose address is taken.
        ap: ApId,
    },
    /// `dst := NEW(ty)` for objects and REFs.
    New {
        /// Destination register.
        dst: Reg,
        /// Allocated (dynamic) type.
        ty: TypeId,
    },
    /// `dst := NEW(ty, len)` for open arrays.
    NewArray {
        /// Destination register.
        dst: Reg,
        /// The open array type.
        ty: TypeId,
        /// Element count.
        len: Operand,
    },
    /// Direct call.
    Call {
        /// Result register, if the callee returns a value.
        dst: Option<Reg>,
        /// Callee.
        func: FuncId,
        /// Arguments (location values for VAR parameters).
        args: Vec<Operand>,
        /// Heap access paths whose addresses are passed (used by RLE to
        /// kill availability at the call).
        addr_aps: Vec<ApId>,
        /// Stack/global slots whose addresses are passed.
        addr_slots: Vec<SlotBase>,
    },
    /// Method invocation, dispatched on the receiver's allocated type.
    CallMethod {
        /// Result register, if the method returns a value.
        dst: Option<Reg>,
        /// Method name.
        method: String,
        /// Static type of the receiver.
        recv_ty: TypeId,
        /// Arguments; `args[0]` is the receiver.
        args: Vec<Operand>,
        /// Heap access paths whose addresses are passed.
        addr_aps: Vec<ApId>,
        /// Stack/global slots whose addresses are passed.
        addr_slots: Vec<SlotBase>,
    },
    /// Builtin operation.
    Intrinsic {
        /// Result register, if any.
        dst: Option<Reg>,
        /// Which intrinsic.
        op: IntrinsicOp,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// `dst := ISTYPE(src, ty)`.
    TypeTest {
        /// Destination register.
        dst: Reg,
        /// Value tested.
        src: Operand,
        /// Target type.
        ty: TypeId,
    },
    /// `dst := NARROW(src, ty)` — checked downcast; traps on failure.
    NarrowTo {
        /// Destination register.
        dst: Reg,
        /// Value narrowed.
        src: Operand,
        /// Target type.
        ty: TypeId,
    },
}

impl Instr {
    /// The destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Instr::ConstText { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::LoadSlot { dst, .. }
            | Instr::LoadMem { dst, .. }
            | Instr::LoadInd { dst, .. }
            | Instr::TakeAddrSlot { dst, .. }
            | Instr::TakeAddrMem { dst, .. }
            | Instr::New { dst, .. }
            | Instr::NewArray { dst, .. }
            | Instr::TypeTest { dst, .. }
            | Instr::NarrowTo { dst, .. } => Some(*dst),
            Instr::Call { dst, .. }
            | Instr::CallMethod { dst, .. }
            | Instr::Intrinsic { dst, .. } => *dst,
            Instr::StoreSlot { .. } | Instr::StoreMem { .. } | Instr::StoreInd { .. } => None,
        }
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a boolean operand.
    Branch {
        /// Condition.
        cond: Operand,
        /// Successor when true.
        then_bb: BlockId,
        /// Successor when false.
        else_bb: BlockId,
    },
    /// Function return.
    Return(Option<Operand>),
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return(_) => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The instructions.
    pub instrs: Vec<Instr>,
    /// The terminator.
    pub term: Terminator,
}

impl Block {
    /// An empty block ending in a return (placeholder during construction).
    pub fn new() -> Self {
        Block {
            instrs: Vec::new(),
            term: Terminator::Return(None),
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Self::new()
    }
}

/// Storage classification of a slot variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarClass {
    /// Scalar local whose address is never taken: modeled as a machine
    /// register (free to access).
    Register,
    /// Lives in stack memory: aggregates and address-taken locals.
    Stack,
}

/// A slot variable of a function.
#[derive(Debug, Clone)]
pub struct VarDecl {
    /// Source name (synthesized names start with `$`).
    pub name: String,
    /// Declared type.
    pub ty: TypeId,
    /// Size in slots (1 for scalars).
    pub size: u32,
    /// Storage class.
    pub class: VarClass,
}

/// A lowered function.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name (`<main>` for the module body).
    pub name: String,
    /// Number of leading vars that are parameters.
    pub n_params: u32,
    /// Parameter modes, parallel to the first `n_params` vars.
    pub param_modes: Vec<ParamMode>,
    /// Return type, if any.
    pub ret: Option<TypeId>,
    /// All slot variables (parameters first).
    pub vars: Vec<VarDecl>,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
    /// Number of virtual registers used.
    pub n_regs: u32,
}

impl Function {
    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Block accessor.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.0 as usize]
    }

    /// Mutable block accessor.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.0 as usize]
    }

    /// Iterates over block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Number of instructions (excluding terminators).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

/// Which `(declared type, field)` pairs and which array types have their
/// address taken anywhere in the program (via VAR actuals or WITH). This is
/// the program-text half of the paper's `AddressTaken` predicate; the
/// open-world rule of §4 adds pass-by-reference formals.
#[derive(Debug, Clone, Default)]
pub struct AddressTakenInfo {
    /// `(declared base type, field symbol)` pairs whose address is taken.
    pub fields: HashSet<(TypeId, Symbol)>,
    /// Array types some element of which has its address taken.
    pub elements: HashSet<TypeId>,
}

/// A recorded pointer assignment `Type(lhs) := Type(rhs)` with different
/// declared types — the *merges* consumed by SMTypeRefs (§2.4). Lowering
/// records every explicit assignment plus the implicit ones: initializers,
/// actual→formal bindings, RETURN values, and method receiver bindings.
pub type Merge = (TypeId, TypeId);

/// A whole lowered program.
#[derive(Debug, Clone)]
pub struct Program {
    /// All types.
    pub types: TypeTable,
    /// Functions; `main` is the module body.
    pub funcs: Vec<Function>,
    /// The module body function.
    pub main: FuncId,
    /// Global variables (with layout offsets into the global frame).
    pub globals: Vec<GlobalDecl>,
    /// Total size of the global frame in slots.
    pub global_frame_size: u32,
    /// Text literal pool.
    pub texts: Vec<String>,
    /// Interned access paths.
    pub aps: ApTable,
    /// Interned field names referenced by access paths.
    pub symbols: SymbolTable,
    /// The AddressTaken facts.
    pub address_taken: AddressTakenInfo,
    /// Dispatch table: `(object type, method) -> implementing function`.
    pub method_impls: HashMap<(TypeId, String), FuncId>,
    /// Types that appear in NEW expressions (allocated at runtime).
    pub allocated_types: HashSet<TypeId>,
    /// All pointer-assignment merges for SMTypeRefs.
    pub merges: Vec<Merge>,
}

/// A global variable with its frame offset.
#[derive(Debug, Clone)]
pub struct GlobalDecl {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: TypeId,
    /// Offset in the global frame.
    pub offset: u32,
    /// Size in slots.
    pub size: u32,
}

impl Program {
    /// Function accessor.
    pub fn func(&self, f: FuncId) -> &Function {
        &self.funcs[f.0 as usize]
    }

    /// Mutable function accessor.
    pub fn func_mut(&mut self, f: FuncId) -> &mut Function {
        &mut self.funcs[f.0 as usize]
    }

    /// Iterates over function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Looks up a function by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Total static instruction count.
    pub fn instr_count(&self) -> usize {
        self.funcs.iter().map(Function::instr_count).sum()
    }

    /// All visible (non-hidden) heap reference sites:
    /// `(function, access path, is_store)`.
    pub fn heap_ref_sites(&self) -> Vec<(FuncId, ApId, bool)> {
        let mut out = Vec::new();
        for fid in self.func_ids() {
            for block in &self.func(fid).blocks {
                for instr in &block.instrs {
                    match instr {
                        Instr::LoadMem { ap, hidden, .. } if !hidden => {
                            out.push((fid, *ap, false));
                        }
                        Instr::StoreMem { ap, .. } => out.push((fid, *ap, true)),
                        _ => {}
                    }
                }
            }
        }
        out
    }

    /// [`Self::heap_ref_sites`] deduplicated into per-function row
    /// ranges: each function's *distinct* reference paths, sorted by
    /// `ApId` within the function, functions in `FuncId` order. This is
    /// the shape the bulk pair census consumes (`tbaa::pairs`): the
    /// ranges become per-function bit masks over `ApId` space, and the
    /// sort makes the strictly-above triangular mask well defined.
    pub fn heap_ref_rows(&self) -> HeapRefRows {
        let mut rows = HeapRefRows::default();
        let mut group: Vec<ApId> = Vec::new();
        for fid in self.func_ids() {
            group.clear();
            for block in &self.func(fid).blocks {
                for instr in &block.instrs {
                    match instr {
                        Instr::LoadMem { ap, hidden, .. } if !hidden => group.push(*ap),
                        Instr::StoreMem { ap, .. } => group.push(*ap),
                        _ => {}
                    }
                }
            }
            if group.is_empty() {
                continue;
            }
            group.sort_unstable();
            group.dedup();
            let start = rows.refs.len() as u32;
            rows.refs.extend_from_slice(&group);
            rows.funcs.push((fid, start, rows.refs.len() as u32));
        }
        rows
    }
}

/// Distinct heap reference expressions grouped by function — the row
/// layout of [`Program::heap_ref_rows`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeapRefRows {
    /// Distinct reference `ApId`s, grouped per function, ascending
    /// within each group.
    pub refs: Vec<ApId>,
    /// `(function, start, end)` half-open ranges into
    /// [`HeapRefRows::refs`], in `FuncId` order; functions with no
    /// references are omitted.
    pub funcs: Vec<(FuncId, u32, u32)>,
}

impl HeapRefRows {
    /// Total distinct `(function, path)` reference expressions — the
    /// `references` column of the paper's Table 5.
    pub fn references(&self) -> usize {
        self.refs.len()
    }

    /// Iterates `(function, path)` pairs in row order.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, ApId)> + '_ {
        self.funcs.iter().flat_map(move |&(f, s, e)| {
            self.refs[s as usize..e as usize]
                .iter()
                .map(move |&ap| (f, ap))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(
            Terminator::Branch {
                cond: Operand::ImmBool(true),
                then_bb: BlockId(1),
                else_bb: BlockId(2),
            }
            .successors(),
            vec![BlockId(1), BlockId(2)]
        );
        assert!(Terminator::Return(None).successors().is_empty());
    }

    #[test]
    fn instr_dst() {
        let i = Instr::Copy {
            dst: Reg(4),
            src: Operand::ImmInt(1),
        };
        assert_eq!(i.dst(), Some(Reg(4)));
        let s = Instr::StoreSlot {
            addr: SlotAddr::var(SlotBase::Local(VarId(0))),
            src: Operand::ImmInt(1),
        };
        assert_eq!(s.dst(), None);
    }

    #[test]
    fn slot_addr_simple() {
        let a = SlotAddr::var(SlotBase::Global(GlobalId(2)));
        assert!(a.is_simple());
        let b = SlotAddr {
            base: SlotBase::Local(VarId(0)),
            offset: 2,
            indices: vec![],
        };
        assert!(!b.is_simple());
    }
}
