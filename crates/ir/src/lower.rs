//! Lowering from the checked AST to the register IR.
//!
//! Besides code generation, lowering collects the three program facts the
//! alias analyses consume:
//!
//! * **access paths** — every heap load/store is annotated with its
//!   canonical source path (`a.b^.c`), interned in the program's
//!   [`crate::path::ApTable`];
//! * **AddressTaken** — VAR actuals and WITH bindings of heap designators
//!   record `(declared type, field)` / array-element facts (§2.3);
//! * **merges** — every explicit or implicit pointer assignment whose two
//!   sides have different declared types (§2.4: assignments, initializers,
//!   actual→formal bindings, RETURN values, method receiver bindings).
//!
//! Open-array subscripts emit a *hidden* dope-vector load for the bounds
//! check; those loads are invisible to RLE, reproducing the paper's
//! Encapsulation category.

use crate::ir::*;
use crate::path::*;
use crate::symbols::{Symbol, SymbolTable};
use mini_m3::ast::{BinOp, Expr, ExprId, Stmt, StmtId, UnOp};
use mini_m3::check::{
    Builtin, CallRes, CheckedModule, ConstVal, LocalId, NameRes, ProcId, VarKind, WithKind,
};
use mini_m3::error::{Diagnostics, Phase};
use mini_m3::span::Span;
use mini_m3::types::{ParamMode, TypeId, TypeKind};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Lowers a checked module to IR.
///
/// # Errors
///
/// Reports the few constructs the IR restricts (e.g. non-constant `BY`
/// steps) as diagnostics.
///
/// # Examples
///
/// ```
/// let checked = mini_m3::compile(
///     "MODULE M; VAR x: INTEGER; BEGIN x := 2 + 3 END M.")?;
/// let prog = tbaa_ir::lower::lower(checked).map_err(|e| e.to_string())?;
/// assert_eq!(prog.funcs.len(), 1); // just <main>
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lower(checked: CheckedModule) -> Result<Program, Diagnostics> {
    let mut lw = Lowerer::new(Arc::new(checked));
    lw.run();
    assemble(lw)
}

/// The worker count actually worth spawning for `items` independent work
/// units when `requested` threads were asked for: never more threads than
/// items, and never more than the host exposes — a single-core host pays
/// thread-spawn overhead without any parallel speedup, so it always runs
/// serial (the `pairs.scaling` regression this fixes).
pub fn effective_workers(requested: usize, items: usize) -> usize {
    // `available_parallelism` re-parses cgroup quotas on every call
    // (~10µs on Linux) — far too slow for per-query kernels that route
    // their thread clamp through here. The core count is fixed for the
    // process lifetime, so resolve it once.
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let cores =
        *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    effective_workers_for(requested, items, cores)
}

/// Pure core of [`effective_workers`], parameterized on the core count so
/// the clamp is testable on any host.
pub fn effective_workers_for(requested: usize, items: usize, cores: usize) -> usize {
    requested.clamp(1, items.max(1)).min(cores.max(1))
}

/// [`lower`] with the per-function fan-out: function units are lowered
/// detached on scoped threads and merged **in unit order** through
/// [`ModuleLowerer::absorb_next`], so the output is byte-identical to the
/// serial lowering at any thread count. Worker count is capped by
/// [`effective_workers`]; one worker falls back to plain [`lower`].
pub fn lower_parallel(checked: CheckedModule, threads: usize) -> Result<Program, Diagnostics> {
    let workers = effective_workers(threads, checked.procs.len());
    lower_parallel_with_workers(checked, workers)
}

/// [`lower_parallel`] with an exact worker count (no host-core cap) — the
/// differential tests use this to force the detached-merge path even on a
/// single-core host.
pub fn lower_parallel_with_workers(
    checked: CheckedModule,
    workers: usize,
) -> Result<Program, Diagnostics> {
    if workers <= 1 {
        return lower(checked);
    }
    let checked = Arc::new(checked);
    let units = lower_units_detached(&checked, workers);
    let mut ml = ModuleLowerer::new_shared(checked);
    for unit in units {
        ml.absorb_next(unit);
    }
    ml.finish()
}

/// Lowers every function unit of `checked` detached (fresh local tables)
/// on `workers` scoped threads, returning the units in function order.
/// Workers claim unit indices off a shared atomic cursor, so skewed
/// function sizes still balance.
pub fn lower_units_detached(checked: &Arc<CheckedModule>, workers: usize) -> Vec<DetachedUnit> {
    let n = checked.procs.len();
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<DetachedUnit>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        done.push((i, lower_unit_detached(checked, ProcId(i as u32))));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, u) in h.join().expect("lowering worker panicked") {
                slots[i] = Some(u);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every unit lowered exactly once"))
        .collect()
}

/// Lowers one function unit against fresh empty tables. All ids the unit
/// hands out (`ApId`s, `Symbol`s, text ids, temp/opaque counters) are
/// local; [`ModuleLowerer::absorb_next`] remaps them into the
/// module-shared tables.
pub fn lower_unit_detached(checked: &Arc<CheckedModule>, pid: ProcId) -> DetachedUnit {
    let mut lw = Lowerer::new_detached(Arc::clone(checked));
    lw.lower_func(pid);
    let func = lw.funcs.pop().expect("lower_func pushed");
    DetachedUnit {
        func,
        temps: lw.aps.temp_mark(),
        opaques: lw.aps.opaque_mark(),
        aps: lw.aps,
        symbols: lw.symbols,
        texts: lw.texts,
        merges: lw.merges,
        address_taken: lw.address_taken,
        allocated: lw.allocated,
        diags: lw.diags,
    }
}

/// One function lowered in isolation by [`lower_unit_detached`]: the body
/// plus its shared-state contributions, all in unit-local id spaces.
#[derive(Debug)]
pub struct DetachedUnit {
    func: Function,
    /// Fresh temp roots the unit consumed (local ids `1..=temps`).
    temps: u32,
    /// Fresh opaque-index ids the unit consumed.
    opaques: u32,
    aps: ApTable,
    symbols: SymbolTable,
    texts: Vec<String>,
    merges: Vec<Merge>,
    address_taken: AddressTakenInfo,
    allocated: HashSet<TypeId>,
    diags: Diagnostics,
}

/// Rebases a detached unit's opaque-index ids into the module id space.
fn remap_index(ix: &mut ApIndex, opaque_base: u32) {
    match ix {
        ApIndex::Opaque(o) => *o += opaque_base,
        ApIndex::Bin(_, l, r) => {
            remap_index(l, opaque_base);
            remap_index(r, opaque_base);
        }
        _ => {}
    }
}

/// Rebases a detached unit's access path: temp roots and opaque indices
/// shift by the module counters at absorb time (fresh ids are handed out
/// pre-increment, so local id `k` is exactly serial id `base + k`), and
/// field symbols map through the unit's symbol remap table.
fn remap_path(p: &AccessPath, sym_map: &[Symbol], temp_base: u32, opaque_base: u32) -> AccessPath {
    let mut p = p.clone();
    if let ApRoot::Temp(t) = &mut p.root {
        *t += temp_base;
    }
    for s in &mut p.steps {
        match s {
            ApStep::Field { name, .. } => *name = sym_map[name.0 as usize],
            ApStep::Index { index, .. } => remap_index(index, opaque_base),
            _ => {}
        }
    }
    p
}

/// Rewrites every unit-local id a lowered body carries (`ApId`
/// annotations on heap instructions and text-literal ids) into the
/// module id space.
fn remap_func(f: &mut Function, ap_map: &[ApId], text_map: &[u32]) {
    for b in &mut f.blocks {
        for i in &mut b.instrs {
            match i {
                Instr::LoadMem { ap, .. }
                | Instr::StoreMem { ap, .. }
                | Instr::TakeAddrMem { ap, .. } => *ap = ap_map[ap.0 as usize],
                Instr::Call { addr_aps, .. } | Instr::CallMethod { addr_aps, .. } => {
                    for ap in addr_aps {
                        *ap = ap_map[ap.0 as usize];
                    }
                }
                Instr::ConstText { text, .. } => *text = text_map[*text as usize],
                _ => {}
            }
        }
    }
}

/// Assembles the final [`Program`] from a fully-driven [`Lowerer`] —
/// shared tail of [`lower`] and [`ModuleLowerer::finish`].
fn assemble(lw: Lowerer) -> Result<Program, Diagnostics> {
    if lw.diags.has_errors() {
        Err(lw.diags)
    } else {
        let main = FuncId(lw.checked.main.0);
        let method_impls = lw
            .checked
            .method_impls
            .iter()
            .map(|(&(t, ref m), &p)| ((t, m.clone()), FuncId(p.0)))
            .collect();
        // Reclaim the checked module's type table when this lowering
        // holds the last reference (always true once the detached
        // workers have joined); a still-shared module pays one clone.
        let types = match Arc::try_unwrap(lw.checked) {
            Ok(checked) => checked.types,
            Err(shared) => shared.types.clone(),
        };
        Ok(Program {
            types,
            funcs: lw.funcs,
            main,
            globals: lw.globals,
            global_frame_size: lw.global_frame_size,
            texts: lw.texts,
            aps: lw.aps,
            symbols: lw.symbols,
            address_taken: lw.address_taken,
            method_impls,
            allocated_types: lw.allocated,
            merges: lw.merges,
        })
    }
}

/// Everything one function's lowering appended to the *module-shared*
/// lowering state, recorded as a replayable delta. This doubles as the
/// function's analysis **summary**: `merges` are its pointer-assignment
/// edges (§2.4) and `taken_fields`/`taken_elements` its `AddressTaken`
/// contributions (§2.3) — the global fixpoint (type hierarchy + Steensgaard
/// merge) is recombined from these without re-lowering the function.
///
/// Replaying the deltas in original function order onto identical prefix
/// state reproduces the exact shared tables (same ids, same order) that a
/// from-scratch lowering would build.
#[derive(Debug, Clone, Default, PartialEq, Hash)]
pub struct FuncEffects {
    /// Access paths this function was first to intern, in intern order.
    pub aps: Vec<AccessPath>,
    /// How many fresh temp roots it consumed.
    pub temps: u32,
    /// How many fresh opaque-index ids it consumed.
    pub opaques: u32,
    /// Field names it was first to intern, in intern order.
    pub symbols: Vec<String>,
    /// Text literals it was first to intern, in intern order.
    pub texts: Vec<String>,
    /// Pointer-assignment merges it recorded, in order.
    pub merges: Vec<Merge>,
    /// `AddressTaken` field facts it contributed (sorted for determinism).
    pub taken_fields: Vec<(TypeId, Symbol)>,
    /// `AddressTaken` element facts it contributed (sorted).
    pub taken_elements: Vec<TypeId>,
    /// Allocated types it contributed (sorted).
    pub allocated: Vec<TypeId>,
}

/// One function's lowering: the generated body plus its shared-state
/// effects, as produced by [`ModuleLowerer::lower_next`].
#[derive(Debug, Clone)]
pub struct FuncLowering {
    /// The lowered function body.
    pub func: Function,
    /// The shared-state delta its lowering produced.
    pub effects: FuncEffects,
    /// Whether lowering emitted no diagnostics. Only clean lowerings are
    /// safe to reuse: a diagnostic is part of the observable output and
    /// must be re-emitted by re-lowering.
    pub clean: bool,
}

/// Table positions before one unit is driven, for delta capture. The
/// address-taken/allocated deltas come from insertion-order logs the
/// [`Lowerer`] maintains alongside its sets, so capturing a unit no
/// longer clones three `HashSet`s up front.
struct Marks {
    aps: usize,
    temps: u32,
    opaques: u32,
    syms: usize,
    texts: usize,
    merges: usize,
    diags: usize,
    taken_fields: usize,
    taken_elements: usize,
    allocated: usize,
}

impl Marks {
    fn take(lw: &Lowerer) -> Marks {
        Marks {
            aps: lw.aps.len(),
            temps: lw.aps.temp_mark(),
            opaques: lw.aps.opaque_mark(),
            syms: lw.symbols.len(),
            texts: lw.texts.len(),
            merges: lw.merges.len(),
            diags: lw.diags.len(),
            taken_fields: lw.taken_fields_log.len(),
            taken_elements: lw.taken_elements_log.len(),
            allocated: lw.allocated_log.len(),
        }
    }

    /// The delta between the marks and the lowerer's current state, as a
    /// cacheable [`FuncLowering`] for the function just driven.
    fn capture(self, lw: &Lowerer) -> FuncLowering {
        let mut taken_fields = lw.taken_fields_log[self.taken_fields..].to_vec();
        taken_fields.sort_unstable();
        let mut taken_elements = lw.taken_elements_log[self.taken_elements..].to_vec();
        taken_elements.sort_unstable();
        let mut allocated = lw.allocated_log[self.allocated..].to_vec();
        allocated.sort_unstable();
        FuncLowering {
            func: lw.funcs.last().expect("a function was driven").clone(),
            effects: FuncEffects {
                aps: (self.aps..lw.aps.len())
                    .map(|i| lw.aps.path(ApId(i as u32)).clone())
                    .collect(),
                temps: lw.aps.temp_mark() - self.temps,
                opaques: lw.aps.opaque_mark() - self.opaques,
                symbols: lw
                    .symbols
                    .iter()
                    .skip(self.syms)
                    .map(|(_, n)| n.to_string())
                    .collect(),
                texts: lw.texts[self.texts..].to_vec(),
                merges: lw.merges[self.merges..].to_vec(),
                taken_fields,
                taken_elements,
                allocated,
            },
            clean: lw.diags.len() == self.diags,
        }
    }
}

/// A resumable, function-at-a-time driver over the same lowering engine as
/// [`lower`], for incremental compilation (`tbaa-incr`).
///
/// Call [`lower_next`](Self::lower_next) to lower the next function fresh
/// (capturing its [`FuncEffects`]) or [`replay_next`](Self::replay_next) to
/// splice in a cached [`FuncLowering`] without re-running the lowerer, then
/// [`finish`](Self::finish) once every function is accounted for. Driving
/// all functions through `lower_next` yields a program byte-identical to
/// [`lower`]; substituting `replay_next` for any prefix-compatible cached
/// unit preserves that equivalence.
pub struct ModuleLowerer {
    lw: Lowerer,
    next: u32,
}

impl ModuleLowerer {
    /// Starts lowering `checked`, with no function lowered yet.
    pub fn new(checked: CheckedModule) -> Self {
        Self::new_shared(Arc::new(checked))
    }

    /// [`new`](Self::new) over an already-shared module — the parallel
    /// cold-compile path keeps one `Arc` per detached worker plus this
    /// one, so the module is checked once and never cloned.
    pub fn new_shared(checked: Arc<CheckedModule>) -> Self {
        ModuleLowerer {
            lw: Lowerer::new(checked),
            next: 0,
        }
    }

    /// Total number of functions in the module (including `<main>`).
    pub fn num_procs(&self) -> usize {
        self.lw.checked.procs.len()
    }

    /// Index of the next function to lower or replay.
    pub fn position(&self) -> usize {
        self.next as usize
    }

    /// Lowers the next function fresh, capturing its shared-state effects.
    pub fn lower_next(&mut self) -> FuncLowering {
        let marks = Marks::take(&self.lw);
        self.lw.lower_func(ProcId(self.next));
        self.next += 1;
        marks.capture(&self.lw)
    }

    /// Splices a detached unit in by remapping its locally-numbered ids
    /// (paths, temp/opaque roots, field symbols, text literals) into the
    /// module-shared tables **in the unit's own intern order**. Detached
    /// lowering interns in the same first-use order a serial lowering
    /// does, and fresh ids are handed out pre-increment, so local id `k`
    /// rebased by the module counter is exactly the id serial lowering
    /// would have produced — the merged tables, and therefore the
    /// assembled program, are byte-identical to serial output.
    pub fn absorb_next(&mut self, unit: DetachedUnit) {
        let lw = &mut self.lw;
        let temp_base = lw.aps.temp_mark();
        let opaque_base = lw.aps.opaque_mark();
        // Field symbols and text literals, in unit intern order.
        let sym_map: Vec<Symbol> = unit
            .symbols
            .iter()
            .map(|(_, n)| lw.symbols.intern(n))
            .collect();
        let text_map: Vec<u32> = unit.texts.iter().map(|t| lw.text_id(t)).collect();
        // Access paths: rebase local ids, then re-intern in unit order
        // (already-shared paths dedup to their existing module ids; new
        // ones append in the same order serial lowering would).
        let ap_map: Vec<ApId> = unit
            .aps
            .iter()
            .map(|(_, p)| {
                let p = remap_path(p, &sym_map, temp_base, opaque_base);
                lw.aps.intern(p)
            })
            .collect();
        lw.aps.advance_counters(unit.temps, unit.opaques);

        let mut func = unit.func;
        remap_func(&mut func, &ap_map, &text_map);
        lw.funcs.push(func);
        lw.merges.extend_from_slice(&unit.merges);
        for &(ty, sym) in unit.address_taken.fields.iter() {
            let f = (ty, sym_map[sym.0 as usize]);
            if lw.address_taken.fields.insert(f) {
                lw.taken_fields_log.push(f);
            }
        }
        for &t in unit.address_taken.elements.iter() {
            if lw.address_taken.elements.insert(t) {
                lw.taken_elements_log.push(t);
            }
        }
        for &t in unit.allocated.iter() {
            if lw.allocated.insert(t) {
                lw.allocated_log.push(t);
            }
        }
        lw.diags.extend(unit.diags);
        self.next += 1;
    }

    /// [`absorb_next`](Self::absorb_next), additionally capturing the
    /// unit's shared-state delta as a cacheable [`FuncLowering`] —
    /// exactly what [`lower_next`](Self::lower_next) would have captured
    /// for the same function.
    pub fn absorb_next_captured(&mut self, unit: DetachedUnit) -> FuncLowering {
        let marks = Marks::take(&self.lw);
        self.absorb_next(unit);
        marks.capture(&self.lw)
    }

    /// Splices a cached function in by replaying its shared-state delta.
    ///
    /// Sound only when the module-shared prefix state (header + effects of
    /// all earlier functions) is identical to the state the cached unit was
    /// lowered under — the caller (`tbaa-incr`) guarantees this by keying
    /// cache entries on a context hash chained over prior effects.
    pub fn replay_next(&mut self, cached: &FuncLowering) {
        let lw = &mut self.lw;
        lw.funcs.push(cached.func.clone());
        let eff = &cached.effects;
        for ap in &eff.aps {
            lw.aps.intern(ap.clone());
        }
        lw.aps.advance_counters(eff.temps, eff.opaques);
        for s in &eff.symbols {
            lw.symbols.intern(s);
        }
        for t in &eff.texts {
            lw.text_id(t);
        }
        lw.merges.extend_from_slice(&eff.merges);
        for &f in &eff.taken_fields {
            if lw.address_taken.fields.insert(f) {
                lw.taken_fields_log.push(f);
            }
        }
        for &t in &eff.taken_elements {
            if lw.address_taken.elements.insert(t) {
                lw.taken_elements_log.push(t);
            }
        }
        for &t in &eff.allocated {
            if lw.allocated.insert(t) {
                lw.allocated_log.push(t);
            }
        }
        self.next += 1;
    }

    /// Assembles the program once every function has been lowered or
    /// replayed.
    pub fn finish(self) -> Result<Program, Diagnostics> {
        debug_assert_eq!(
            self.next as usize,
            self.lw.checked.procs.len(),
            "finish() before all functions were driven"
        );
        assemble(self.lw)
    }
}

/// How a `LocalId` is realized in the current function.
#[derive(Debug, Clone)]
enum Binding {
    /// A plain frame slot.
    Slot(VarId),
    /// A VAR parameter: the slot holds a location value.
    VarParam(VarId),
    /// A WITH alias over a frozen place.
    Place(LPlace),
}

/// A lowered place: where a designator's storage is, plus its access path.
#[derive(Debug, Clone)]
struct LPlace {
    kind: LPlaceKind,
    ap: AccessPath,
}

#[derive(Debug, Clone)]
enum LPlaceKind {
    Slot(SlotAddr),
    Mem(MemAddr),
    Ind(Operand),
}

struct Lowerer {
    checked: Arc<CheckedModule>,
    diags: Diagnostics,
    funcs: Vec<Function>,
    globals: Vec<GlobalDecl>,
    global_frame_size: u32,
    texts: Vec<String>,
    text_intern: HashMap<String, u32>,
    aps: ApTable,
    symbols: SymbolTable,
    address_taken: AddressTakenInfo,
    /// Insertion-order logs mirroring the sets above/below: a unit's
    /// delta is a slice of the log, so per-unit capture never clones the
    /// sets themselves.
    taken_fields_log: Vec<(TypeId, Symbol)>,
    taken_elements_log: Vec<TypeId>,
    merges: Vec<Merge>,
    allocated: HashSet<TypeId>,
    allocated_log: Vec<TypeId>,
    // per-function state
    fid: FuncId,
    vars: Vec<VarDecl>,
    blocks: Vec<Block>,
    cur: BlockId,
    n_regs: u32,
    bindings: Vec<Binding>,
    loop_exits: Vec<BlockId>,
}

impl Lowerer {
    fn new(checked: Arc<CheckedModule>) -> Self {
        // Global frame layout.
        let mut globals = Vec::with_capacity(checked.globals.len());
        let mut off = 0u32;
        for g in &checked.globals {
            let size = checked.types.size_of(g.ty).max(1);
            globals.push(GlobalDecl {
                name: g.name.clone(),
                ty: g.ty,
                offset: off,
                size,
            });
            off += size;
        }
        // Cheap pre-scan over the expression arena: designator shapes
        // bound how many access paths the module can intern, Qualify
        // expressions its field symbols, Text its literals. Pre-sizing
        // the intern tables avoids mid-module rehash/regrow churn.
        let mut ap_cap = 0usize;
        let mut sym_cap = 0usize;
        let mut text_cap = 0usize;
        for e in &checked.ast.exprs {
            match e {
                Expr::Qualify { .. } => {
                    ap_cap += 1;
                    sym_cap += 1;
                }
                Expr::Deref(_) | Expr::Index { .. } => ap_cap += 2,
                Expr::Text(_) => text_cap += 1,
                _ => {}
            }
        }
        let n_procs = checked.procs.len();
        let mut lw = Self::new_detached(checked);
        lw.funcs = Vec::with_capacity(n_procs);
        lw.globals = globals;
        lw.global_frame_size = off;
        lw.aps = ApTable::with_capacity(ap_cap);
        lw.symbols = SymbolTable::with_capacity(sym_cap);
        lw.texts = Vec::with_capacity(text_cap);
        lw.text_intern = HashMap::with_capacity(text_cap);
        lw
    }

    /// A lowerer for one detached unit: shares the checked module but
    /// starts from empty tables and skips the global frame layout and
    /// pre-scan (neither is consulted while lowering a single function —
    /// the layout is only assembled into the final program).
    fn new_detached(checked: Arc<CheckedModule>) -> Self {
        Lowerer {
            checked,
            diags: Diagnostics::new(),
            funcs: Vec::new(),
            globals: Vec::new(),
            global_frame_size: 0,
            texts: Vec::new(),
            text_intern: HashMap::new(),
            aps: ApTable::new(),
            symbols: SymbolTable::new(),
            address_taken: AddressTakenInfo::default(),
            taken_fields_log: Vec::new(),
            taken_elements_log: Vec::new(),
            merges: Vec::new(),
            allocated: HashSet::new(),
            allocated_log: Vec::new(),
            fid: FuncId(0),
            vars: Vec::new(),
            blocks: Vec::new(),
            cur: BlockId(0),
            n_regs: 0,
            bindings: Vec::new(),
            loop_exits: Vec::new(),
        }
    }

    fn error(&mut self, span: Span, msg: impl Into<String>) {
        self.diags.error(Phase::Lower, span, msg);
    }

    fn run(&mut self) {
        for i in 0..self.checked.procs.len() {
            self.lower_func(ProcId(i as u32));
        }
    }

    // ---- small helpers ---------------------------------------------------

    fn ty(&self, e: ExprId) -> TypeId {
        self.checked.ty(e)
    }

    fn reg(&mut self) -> Reg {
        let r = Reg(self.n_regs);
        self.n_regs += 1;
        r
    }

    fn emit(&mut self, instr: Instr) {
        self.blocks[self.cur.0 as usize].instrs.push(instr);
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        id
    }

    fn terminate(&mut self, term: Terminator) {
        self.blocks[self.cur.0 as usize].term = term;
    }

    /// Terminates the current block with a jump and switches to `next`.
    fn goto(&mut self, next: BlockId) {
        self.terminate(Terminator::Jump(next));
        self.cur = next;
    }

    fn scratch(&mut self, name: &str, ty: TypeId, size: u32, class: VarClass) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: format!("${name}{}", id.0),
            ty,
            size,
            class,
        });
        id
    }

    fn text_id(&mut self, t: &str) -> u32 {
        if let Some(&i) = self.text_intern.get(t) {
            return i;
        }
        let i = self.texts.len() as u32;
        self.texts.push(t.to_string());
        self.text_intern.insert(t.to_string(), i);
        i
    }

    /// Marks a local var as living in stack memory.
    fn make_stack(&mut self, v: VarId) {
        self.vars[v.0 as usize].class = VarClass::Stack;
    }

    /// Records a pointer-assignment merge if both sides are pointer types
    /// with different declared types (NIL assignments merge nothing).
    fn record_merge(&mut self, dst: TypeId, src: TypeId) {
        let types = &self.checked.types;
        if dst != src && types.is_pointer(dst) && types.is_pointer(src) {
            self.merges.push((dst, src));
        }
    }

    /// Records that the address of `ap`'s final step is taken.
    fn record_address_taken(&mut self, ap: &AccessPath) {
        match ap.steps.last() {
            Some(ApStep::Field { name, base_ty, .. }) => {
                let f = (*base_ty, *name);
                if self.address_taken.fields.insert(f) {
                    self.taken_fields_log.push(f);
                }
            }
            Some(ApStep::Index { base_ty, .. }) if self.address_taken.elements.insert(*base_ty) => {
                self.taken_elements_log.push(*base_ty);
            }
            _ => {}
        }
    }

    // ---- function lowering ------------------------------------------------

    fn lower_func(&mut self, pid: ProcId) {
        let checked = Arc::clone(&self.checked);
        let pinfo = checked.proc(pid);
        self.fid = FuncId(pid.0);
        self.vars = Vec::with_capacity(pinfo.locals.len());
        self.blocks = vec![Block::new()];
        self.cur = BlockId(0);
        self.n_regs = 0;
        self.bindings.clear();
        self.loop_exits.clear();

        let mut param_modes = Vec::with_capacity(pinfo.n_params as usize);
        for (i, l) in pinfo.locals.iter().enumerate() {
            let is_param = (i as u32) < pinfo.n_params;
            let size = checked.types.size_of(l.ty).max(1);
            let scalar = checked.types.is_scalar(l.ty);
            let class = if scalar {
                VarClass::Register
            } else {
                VarClass::Stack
            };
            let v = VarId(self.vars.len() as u32);
            self.vars.push(VarDecl {
                name: l.name.clone(),
                ty: l.ty,
                size,
                class,
            });
            let binding = match l.kind {
                VarKind::Param(ParamMode::Var) => {
                    param_modes.push(ParamMode::Var);
                    Binding::VarParam(v)
                }
                VarKind::Param(ParamMode::Value) => {
                    param_modes.push(ParamMode::Value);
                    Binding::Slot(v)
                }
                _ => Binding::Slot(v),
            };
            let _ = is_param;
            self.bindings.push(binding);
        }

        // Local initializers (declared locals of the source procedure), or
        // global initializers when lowering <main>.
        if pid == checked.main {
            for &(gid, init) in &checked.global_inits {
                let gty = checked.globals[gid.0 as usize].ty;
                let ity = self.ty(init);
                let op = self.lower_expr(init);
                self.record_merge(gty, ity);
                self.emit(Instr::StoreSlot {
                    addr: SlotAddr::var(SlotBase::Global(gid)),
                    src: op,
                });
            }
        } else {
            let pdecl = &checked.ast.procs[pid.0 as usize];
            // Map declared local names (after params) to binding indices in
            // declaration order; checker laid them out contiguously.
            let mut next = pinfo.n_params as usize;
            for vd in &pdecl.locals {
                for _name in &vd.names {
                    if let Some(init) = vd.init {
                        let lid = LocalId(next as u32);
                        let ity = self.ty(init);
                        let op = self.lower_expr(init);
                        let &Binding::Slot(v) = &self.bindings[lid.0 as usize] else {
                            unreachable!("declared locals are slots");
                        };
                        let lty = self.vars[v.0 as usize].ty;
                        self.record_merge(lty, ity);
                        self.emit(Instr::StoreSlot {
                            addr: SlotAddr::var(SlotBase::Local(v)),
                            src: op,
                        });
                    }
                    next += 1;
                }
            }
        }

        for &s in &pinfo.body {
            self.lower_stmt(s);
        }

        self.funcs.push(Function {
            name: pinfo.name.clone(),
            n_params: pinfo.n_params,
            param_modes,
            ret: pinfo.ret,
            vars: std::mem::take(&mut self.vars),
            blocks: std::mem::take(&mut self.blocks),
            n_regs: self.n_regs,
        });
    }

    // ---- statements --------------------------------------------------------

    fn lower_stmt(&mut self, s: StmtId) {
        let checked = Arc::clone(&self.checked);
        match checked.ast.stmt(s) {
            Stmt::Assign { lhs, rhs } => self.lower_assign(*lhs, *rhs),
            Stmt::Call(e) => {
                self.lower_call(*e, false);
            }
            &Stmt::Eval(e) => {
                let ty = self.ty(e);
                if checked.types.is_scalar(ty) {
                    let _ = self.lower_expr(e);
                } else {
                    let span = checked.ast.expr_span(e);
                    self.error(span, "EVAL of an aggregate value is not supported");
                }
            }
            Stmt::If { arms, else_body } => {
                let join = self.new_block();
                for (cond, body) in arms {
                    let then_bb = self.new_block();
                    let next_bb = self.new_block();
                    let c = self.lower_expr(*cond);
                    self.terminate(Terminator::Branch {
                        cond: c,
                        then_bb,
                        else_bb: next_bb,
                    });
                    self.cur = then_bb;
                    for &st in body {
                        self.lower_stmt(st);
                    }
                    self.terminate(Terminator::Jump(join));
                    self.cur = next_bb;
                }
                for &st in else_body {
                    self.lower_stmt(st);
                }
                self.goto(join);
            }
            Stmt::While { cond, body } => {
                // Rotated (guard + bottom-test) form: the body dominates the
                // latch and every exit edge, so loop-invariant loads can be
                // hoisted without speculation.
                let body_bb = self.new_block();
                let exit = self.new_block();
                let c = self.lower_expr(*cond); // guard
                self.terminate(Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.cur = body_bb;
                self.loop_exits.push(exit);
                for &st in body {
                    self.lower_stmt(st);
                }
                self.loop_exits.pop();
                let c2 = self.lower_expr(*cond); // bottom test
                self.terminate(Terminator::Branch {
                    cond: c2,
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.cur = exit;
            }
            Stmt::Repeat { body, cond } => {
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.goto(body_bb);
                self.loop_exits.push(exit);
                for &st in body {
                    self.lower_stmt(st);
                }
                self.loop_exits.pop();
                let c = self.lower_expr(*cond);
                self.terminate(Terminator::Branch {
                    cond: c,
                    then_bb: exit,
                    else_bb: body_bb,
                });
                self.cur = exit;
            }
            Stmt::Loop { body } => {
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.goto(body_bb);
                self.loop_exits.push(exit);
                for &st in body {
                    self.lower_stmt(st);
                }
                self.loop_exits.pop();
                self.terminate(Terminator::Jump(body_bb));
                self.cur = exit;
            }
            Stmt::Exit => {
                let Some(&exit) = self.loop_exits.last() else {
                    return; // checker already reported
                };
                self.terminate(Terminator::Jump(exit));
                self.cur = self.new_block(); // unreachable continuation
            }
            Stmt::For {
                var: _,
                from,
                to,
                by,
                body,
            } => self.lower_for(s, *from, *to, *by, body),
            &Stmt::Return(value) => {
                let op = value.map(|v| {
                    let vty = self.ty(v);
                    let o = self.lower_expr(v);
                    if let Some(rt) = checked.proc(ProcId(self.fid.0)).ret {
                        self.record_merge(rt, vty);
                    }
                    o
                });
                self.terminate(Terminator::Return(op));
                self.cur = self.new_block();
            }
            Stmt::With { bindings, body } => {
                let lids = &checked.stmt_locals[&s];
                for (i, (_name, e)) in bindings.iter().enumerate() {
                    let kind = checked.with_kinds[&(s, i)];
                    let lid = lids[i];
                    match kind {
                        WithKind::Alias => {
                            let mut place = self.lower_place(*e);
                            // WITH of a heap designator takes its address.
                            if matches!(place.kind, LPlaceKind::Mem(_)) {
                                self.record_address_taken(&place.ap);
                                // The alias freezes the *location*: if the
                                // path's root variable is reassigned inside
                                // the body, the recorded path would describe
                                // a different location than the alias
                                // accesses. Re-root it at a unique temp —
                                // still type- and shape-accurate for alias
                                // queries (sound kills), but never treated
                                // as the same expression by RLE (no unsound
                                // availability).
                                place.ap.root = ApRoot::Temp(self.aps.fresh_temp());
                            }
                            if let LPlaceKind::Slot(addr) = &place.kind {
                                if let SlotBase::Local(v) = addr.base {
                                    // An alias to a local keeps it addressable.
                                    self.make_stack(v);
                                }
                            }
                            self.bindings[lid.0 as usize] = Binding::Place(place);
                        }
                        WithKind::Value => {
                            let op = self.lower_expr(*e);
                            let &Binding::Slot(v) = &self.bindings[lid.0 as usize] else {
                                unreachable!("WITH value bindings start as slots");
                            };
                            self.emit(Instr::StoreSlot {
                                addr: SlotAddr::var(SlotBase::Local(v)),
                                src: op,
                            });
                        }
                    }
                }
                for &st in body {
                    self.lower_stmt(st);
                }
            }
        }
    }

    fn lower_for(
        &mut self,
        s: StmtId,
        from: ExprId,
        to: ExprId,
        by: Option<ExprId>,
        body: &[StmtId],
    ) {
        let int = self.checked.types.integer();
        // The loop variable slot was allocated by the checker.
        let lid = self.checked.stmt_locals[&s][0];
        let &Binding::Slot(idx_var) = &self.bindings[lid.0 as usize] else {
            unreachable!("FOR index is a slot");
        };
        let step = match by {
            None => 1,
            Some(b) => match self.const_int(b) {
                Some(v) if v != 0 => v,
                _ => {
                    let span = self.checked.ast.expr_span(b);
                    self.error(span, "BY step must be a non-zero integer constant");
                    1
                }
            },
        };
        let from_op = self.lower_expr(from);
        self.emit(Instr::StoreSlot {
            addr: SlotAddr::var(SlotBase::Local(idx_var)),
            src: from_op,
        });
        // Evaluate the limit once.
        let to_op = self.lower_expr(to);
        let limit = self.scratch("limit", int, 1, VarClass::Register);
        self.emit(Instr::StoreSlot {
            addr: SlotAddr::var(SlotBase::Local(limit)),
            src: to_op,
        });
        // Rotated form: guard test, then a bottom-tested body.
        let body_bb = self.new_block();
        let exit = self.new_block();
        let test = |lw: &mut Self| {
            let i = lw.reg();
            lw.emit(Instr::LoadSlot {
                dst: i,
                addr: SlotAddr::var(SlotBase::Local(idx_var)),
            });
            let l = lw.reg();
            lw.emit(Instr::LoadSlot {
                dst: l,
                addr: SlotAddr::var(SlotBase::Local(limit)),
            });
            let c = lw.reg();
            lw.emit(Instr::Bin {
                dst: c,
                op: if step > 0 { BinOp::Le } else { BinOp::Ge },
                lhs: i.into(),
                rhs: l.into(),
            });
            c
        };
        let c = test(self);
        self.terminate(Terminator::Branch {
            cond: c.into(),
            then_bb: body_bb,
            else_bb: exit,
        });
        self.cur = body_bb;
        self.loop_exits.push(exit);
        for &st in body {
            self.lower_stmt(st);
        }
        self.loop_exits.pop();
        // Latch: i := i + step, then the bottom test.
        let i2 = self.reg();
        self.emit(Instr::LoadSlot {
            dst: i2,
            addr: SlotAddr::var(SlotBase::Local(idx_var)),
        });
        let inc = self.reg();
        self.emit(Instr::Bin {
            dst: inc,
            op: BinOp::Add,
            lhs: i2.into(),
            rhs: Operand::ImmInt(step),
        });
        self.emit(Instr::StoreSlot {
            addr: SlotAddr::var(SlotBase::Local(idx_var)),
            src: inc.into(),
        });
        let c2 = test(self);
        self.terminate(Terminator::Branch {
            cond: c2.into(),
            then_bb: body_bb,
            else_bb: exit,
        });
        self.cur = exit;
    }

    fn const_int(&self, e: ExprId) -> Option<i64> {
        match self.checked.ast.expr(e) {
            Expr::Int(v) => Some(*v),
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => self.const_int(*expr).map(|v| -v),
            Expr::Name(_) => match self.checked.name_res.get(&e) {
                Some(NameRes::Const(ConstVal::Int(v))) => Some(*v),
                _ => None,
            },
            _ => None,
        }
    }

    fn lower_assign(&mut self, lhs: ExprId, rhs: ExprId) {
        let lty = self.ty(lhs);
        let rty = self.ty(rhs);
        if matches!(self.checked.types.kind(lty), TypeKind::Record { .. }) {
            // Aggregate assignment: break into component accesses (§2.3).
            let src = self.lower_place(rhs);
            let dst = self.lower_place(lhs);
            self.copy_aggregate(&dst, &src, lty);
            return;
        }
        let op = self.lower_expr(rhs);
        self.record_merge(lty, rty);
        let place = self.lower_place(lhs);
        self.store_place(&place, op);
    }

    /// Copies an aggregate value component by component.
    fn copy_aggregate(&mut self, dst: &LPlace, src: &LPlace, ty: TypeId) {
        let components = self.scalar_components(ty, 0, Vec::new());
        for (offset, steps, _cty) in components {
            let sp = self.extend_place(src, offset, &steps);
            let dp = self.extend_place(dst, offset, &steps);
            let r = self.reg();
            self.load_place_into(&sp, r);
            self.store_place(&dp, r.into());
        }
    }

    /// Flattens `ty` into `(slot offset, ap steps, component type)` scalars.
    fn scalar_components(
        &mut self,
        ty: TypeId,
        base_off: u32,
        base_steps: Vec<ApStep>,
    ) -> Vec<(u32, Vec<ApStep>, TypeId)> {
        let checked = Arc::clone(&self.checked);
        match checked.types.kind(ty) {
            TypeKind::Record { fields } => {
                let mut out = Vec::new();
                for f in fields {
                    let mut steps = base_steps.clone();
                    steps.push(ApStep::Field {
                        name: self.symbols.intern(&f.name),
                        base_ty: ty,
                        ty: f.ty,
                    });
                    out.extend(self.scalar_components(f.ty, base_off + f.offset, steps));
                }
                out
            }
            &TypeKind::Array {
                range: Some((lo, hi)),
                elem,
            } => {
                let esz = checked.types.size_of(elem);
                let mut out = Vec::new();
                for k in 0..=(hi - lo).max(-1) {
                    let mut steps = base_steps.clone();
                    steps.push(ApStep::Index {
                        index: ApIndex::Const(lo + k),
                        base_ty: ty,
                        ty: elem,
                    });
                    out.extend(self.scalar_components(elem, base_off + (k as u32) * esz, steps));
                }
                out
            }
            _ => vec![(base_off, base_steps, ty)],
        }
    }

    fn extend_place(&mut self, p: &LPlace, offset: u32, steps: &[ApStep]) -> LPlace {
        let mut ap = p.ap.clone();
        ap.steps.extend(steps.iter().cloned());
        let kind = match &p.kind {
            LPlaceKind::Slot(a) => {
                let mut a = a.clone();
                a.offset += offset;
                LPlaceKind::Slot(a)
            }
            LPlaceKind::Mem(a) => {
                let mut a = a.clone();
                a.offset += offset;
                LPlaceKind::Mem(a)
            }
            LPlaceKind::Ind(_) => {
                unreachable!("aggregates are never accessed through VAR locations")
            }
        };
        LPlace { kind, ap }
    }

    // ---- places ------------------------------------------------------------

    /// Lowers a designator to a place.
    fn lower_place(&mut self, e: ExprId) -> LPlace {
        let checked = Arc::clone(&self.checked);
        match checked.ast.expr(e) {
            Expr::Name(_) => match checked.name_res.get(&e) {
                Some(&NameRes::Local(l)) => match &self.bindings[l.0 as usize] {
                    &Binding::Slot(v) => LPlace {
                        kind: LPlaceKind::Slot(SlotAddr::var(SlotBase::Local(v))),
                        ap: AccessPath {
                            root: ApRoot::Local {
                                func: self.fid,
                                var: v,
                            },
                            root_ty: self.vars[v.0 as usize].ty,
                            steps: vec![],
                        },
                    },
                    &Binding::VarParam(v) => {
                        let r = self.reg();
                        self.emit(Instr::LoadSlot {
                            dst: r,
                            addr: SlotAddr::var(SlotBase::Local(v)),
                        });
                        LPlace {
                            kind: LPlaceKind::Ind(r.into()),
                            ap: AccessPath {
                                root: ApRoot::Temp(self.aps.fresh_temp()),
                                root_ty: self.vars[v.0 as usize].ty,
                                steps: vec![],
                            },
                        }
                    }
                    Binding::Place(p) => p.clone(),
                },
                Some(&NameRes::Global(g)) => LPlace {
                    kind: LPlaceKind::Slot(SlotAddr::var(SlotBase::Global(g))),
                    ap: AccessPath {
                        root: ApRoot::Global(g),
                        root_ty: checked.globals[g.0 as usize].ty,
                        steps: vec![],
                    },
                },
                _ => unreachable!("checker guarantees designators resolve to variables"),
            },
            Expr::Qualify { base, field } => {
                let base = *base;
                let bty = self.ty(base);
                let f = checked
                    .types
                    .field(bty, field)
                    .expect("checker verified field");
                match checked.types.kind(bty) {
                    TypeKind::Object { .. } => {
                        // The base is a reference value: load it, then field.
                        let (b, bap) = self.lower_expr_with_ap(base);
                        let mut ap = bap;
                        ap.steps.push(ApStep::Field {
                            name: self.symbols.intern(field),
                            base_ty: bty,
                            ty: f.ty,
                        });
                        LPlace {
                            kind: LPlaceKind::Mem(MemAddr {
                                base: b,
                                offset: f.offset,
                                indices: vec![],
                            }),
                            ap,
                        }
                    }
                    TypeKind::Record { .. } => {
                        // The base is itself a place; extend in place.
                        let bp = self.lower_place(base);
                        let step = ApStep::Field {
                            name: self.symbols.intern(field),
                            base_ty: bty,
                            ty: f.ty,
                        };
                        self.extend_place(&bp, f.offset, std::slice::from_ref(&step))
                    }
                    _ => unreachable!("checker verified qualify base"),
                }
            }
            &Expr::Deref(base) => {
                let bty = self.ty(base);
                let TypeKind::Ref { target, .. } = checked.types.kind(bty) else {
                    unreachable!("checker verified deref base");
                };
                let target = *target;
                let (b, bap) = self.lower_expr_with_ap(base);
                let mut ap = bap;
                ap.steps.push(ApStep::Deref { ty: target });
                LPlace {
                    kind: LPlaceKind::Mem(MemAddr {
                        base: b,
                        offset: 0,
                        indices: vec![],
                    }),
                    ap,
                }
            }
            &Expr::Index { base, index } => {
                let bty = self.ty(base);
                let &TypeKind::Array { range, elem } = checked.types.kind(bty) else {
                    unreachable!("checker verified index base");
                };
                let esz = checked.types.size_of(elem);
                let idx_ap = self.canonical_index(index);
                let idx_op = self.lower_expr(index);
                match range {
                    None => {
                        // Open array: the base is a reference; slot 0 is the
                        // dope (length), elements start at slot 1. Emit the
                        // hidden bounds-check load of the dope slot.
                        let (b, bap) = self.lower_expr_with_ap(base);
                        let mut len_ap = bap.clone();
                        len_ap.steps.push(ApStep::DopeLen { base_ty: bty });
                        let len_ap = self.aps.intern(len_ap);
                        let lr = self.reg();
                        self.emit(Instr::LoadMem {
                            dst: lr,
                            addr: MemAddr {
                                base: b,
                                offset: 0,
                                indices: vec![],
                            },
                            ap: len_ap,
                            hidden: true,
                        });
                        let mut ap = bap;
                        ap.steps.push(ApStep::Index {
                            index: idx_ap,
                            base_ty: bty,
                            ty: elem,
                        });
                        LPlace {
                            kind: LPlaceKind::Mem(MemAddr {
                                base: b,
                                offset: 1,
                                indices: vec![(idx_op, 0, esz)],
                            }),
                            ap,
                        }
                    }
                    Some((lo, _hi)) => {
                        // Fixed array: extends the base place.
                        let bp = self.lower_place(base);
                        let mut ap = bp.ap.clone();
                        ap.steps.push(ApStep::Index {
                            index: idx_ap,
                            base_ty: bty,
                            ty: elem,
                        });
                        let kind = match &bp.kind {
                            LPlaceKind::Slot(a) => {
                                let mut a = a.clone();
                                a.indices.push((idx_op, lo, esz));
                                LPlaceKind::Slot(a)
                            }
                            LPlaceKind::Mem(a) => {
                                let mut a = a.clone();
                                a.indices.push((idx_op, lo, esz));
                                LPlaceKind::Mem(a)
                            }
                            LPlaceKind::Ind(_) => {
                                unreachable!("fixed arrays are never VAR-located")
                            }
                        };
                        LPlace { kind, ap }
                    }
                }
            }
            _ => unreachable!("checker guarantees only designators reach lower_place"),
        }
    }

    /// Canonicalizes an index expression for AP identity.
    fn canonical_index(&mut self, e: ExprId) -> ApIndex {
        let checked = Arc::clone(&self.checked);
        match checked.ast.expr(e) {
            &Expr::Int(v) => ApIndex::Const(v),
            Expr::Name(_) => match checked.name_res.get(&e) {
                Some(NameRes::Local(l)) => match &self.bindings[l.0 as usize] {
                    Binding::Slot(v) => ApIndex::Var(*v),
                    _ => ApIndex::Opaque(self.aps.fresh_opaque()),
                },
                Some(NameRes::Global(g)) => ApIndex::Global(*g),
                Some(NameRes::Const(ConstVal::Int(v))) => ApIndex::Const(*v),
                _ => ApIndex::Opaque(self.aps.fresh_opaque()),
            },
            &Expr::Binary { op, lhs, rhs } if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) => {
                let l = self.canonical_index(lhs);
                let r = self.canonical_index(rhs);
                ApIndex::Bin(op, Box::new(l), Box::new(r))
            }
            _ => ApIndex::Opaque(self.aps.fresh_opaque()),
        }
    }

    fn load_place_into(&mut self, p: &LPlace, dst: Reg) {
        match &p.kind {
            LPlaceKind::Slot(addr) => self.emit(Instr::LoadSlot {
                dst,
                addr: addr.clone(),
            }),
            LPlaceKind::Mem(addr) => {
                let ap = self.aps.intern(p.ap.clone());
                self.emit(Instr::LoadMem {
                    dst,
                    addr: addr.clone(),
                    ap,
                    hidden: false,
                });
            }
            LPlaceKind::Ind(loc) => self.emit(Instr::LoadInd { dst, loc: *loc }),
        }
    }

    fn store_place(&mut self, p: &LPlace, src: Operand) {
        match &p.kind {
            LPlaceKind::Slot(addr) => self.emit(Instr::StoreSlot {
                addr: addr.clone(),
                src,
            }),
            LPlaceKind::Mem(addr) => {
                let ap = self.aps.intern(p.ap.clone());
                self.emit(Instr::StoreMem {
                    addr: addr.clone(),
                    src,
                    ap,
                });
            }
            LPlaceKind::Ind(loc) => self.emit(Instr::StoreInd { loc: *loc, src }),
        }
    }

    // ---- expressions ---------------------------------------------------------

    /// Lowers an expression for its value.
    fn lower_expr(&mut self, e: ExprId) -> Operand {
        self.lower_expr_with_ap(e).0
    }

    /// Lowers an expression for its value and returns the access path that
    /// describes where the value came from (a temp root if it is not a
    /// designator).
    fn lower_expr_with_ap(&mut self, e: ExprId) -> (Operand, AccessPath) {
        let checked = Arc::clone(&self.checked);
        let ety = self.ty(e);
        let temp_ap = |lw: &mut Self| AccessPath {
            root: ApRoot::Temp(lw.aps.fresh_temp()),
            root_ty: ety,
            steps: vec![],
        };
        match checked.ast.expr(e) {
            &Expr::Int(v) => (Operand::ImmInt(v), temp_ap(self)),
            &Expr::Bool(b) => (Operand::ImmBool(b), temp_ap(self)),
            &Expr::Char(c) => (Operand::ImmChar(c), temp_ap(self)),
            Expr::Nil => (Operand::ImmNil, temp_ap(self)),
            Expr::Text(t) => {
                let id = self.text_id(t);
                let r = self.reg();
                self.emit(Instr::ConstText { dst: r, text: id });
                (r.into(), temp_ap(self))
            }
            Expr::Name(_) | Expr::Qualify { .. } | Expr::Deref(_) | Expr::Index { .. } => {
                // Designator (or constant name).
                if let Expr::Name(_) = checked.ast.expr(e) {
                    if let Some(NameRes::Const(c)) = checked.name_res.get(&e) {
                        return (self.lower_const(c), temp_ap(self));
                    }
                }
                let place = self.lower_place(e);
                let r = self.reg();
                self.load_place_into(&place, r);
                (r.into(), place.ap)
            }
            Expr::Call { .. } => {
                let op = self.lower_call(e, true).unwrap_or(Operand::ImmInt(0));
                (op, temp_ap(self))
            }
            &Expr::Unary { op, expr } => {
                let s = self.lower_expr(expr);
                let r = self.reg();
                self.emit(Instr::Un { dst: r, op, src: s });
                (r.into(), temp_ap(self))
            }
            &Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And | BinOp::Or => {
                    let r = self.reg();
                    let rhs_bb = self.new_block();
                    let short_bb = self.new_block();
                    let join = self.new_block();
                    let l = self.lower_expr(lhs);
                    let (then_bb, else_bb) = if op == BinOp::And {
                        (rhs_bb, short_bb)
                    } else {
                        (short_bb, rhs_bb)
                    };
                    self.terminate(Terminator::Branch {
                        cond: l,
                        then_bb,
                        else_bb,
                    });
                    self.cur = rhs_bb;
                    let rv = self.lower_expr(rhs);
                    self.emit(Instr::Copy { dst: r, src: rv });
                    self.terminate(Terminator::Jump(join));
                    self.cur = short_bb;
                    self.emit(Instr::Copy {
                        dst: r,
                        src: Operand::ImmBool(op == BinOp::Or),
                    });
                    self.terminate(Terminator::Jump(join));
                    self.cur = join;
                    (r.into(), temp_ap(self))
                }
                BinOp::Concat => {
                    let l = self.lower_expr(lhs);
                    let rv = self.lower_expr(rhs);
                    let r = self.reg();
                    self.emit(Instr::Intrinsic {
                        dst: Some(r),
                        op: IntrinsicOp::TextConcat,
                        args: vec![l, rv],
                    });
                    (r.into(), temp_ap(self))
                }
                _ => {
                    let l = self.lower_expr(lhs);
                    let rv = self.lower_expr(rhs);
                    let r = self.reg();
                    self.emit(Instr::Bin {
                        dst: r,
                        op,
                        lhs: l,
                        rhs: rv,
                    });
                    (r.into(), temp_ap(self))
                }
            },
        }
    }

    fn lower_const(&mut self, c: &ConstVal) -> Operand {
        match c {
            ConstVal::Int(v) => Operand::ImmInt(*v),
            ConstVal::Bool(b) => Operand::ImmBool(*b),
            ConstVal::Char(ch) => Operand::ImmChar(*ch),
            ConstVal::Text(t) => {
                let id = self.text_id(t);
                let r = self.reg();
                self.emit(Instr::ConstText { dst: r, text: id });
                r.into()
            }
        }
    }

    // ---- calls -------------------------------------------------------------

    /// Lowers a call; returns the result operand when `want_value`.
    fn lower_call(&mut self, e: ExprId, want_value: bool) -> Option<Operand> {
        let checked = Arc::clone(&self.checked);
        let Expr::Call { callee: _, args } = checked.ast.expr(e) else {
            unreachable!("lower_call on non-call");
        };
        match checked.call_res.get(&e) {
            Some(&CallRes::Proc(pid)) => {
                let callee = checked.proc(pid);
                let mut ops = Vec::with_capacity(args.len());
                let mut addr_aps = Vec::new();
                let mut addr_slots = Vec::new();
                for (i, &a) in args.iter().enumerate() {
                    let pinfo = &callee.locals[i];
                    let mode = match pinfo.kind {
                        VarKind::Param(m) => m,
                        _ => ParamMode::Value,
                    };
                    let pty = pinfo.ty;
                    match mode {
                        ParamMode::Value => {
                            let aty = self.ty(a);
                            let op = self.lower_expr(a);
                            self.record_merge(pty, aty);
                            ops.push(op);
                        }
                        ParamMode::Var => {
                            let op = self.lower_addr_arg(a, &mut addr_aps, &mut addr_slots);
                            ops.push(op);
                        }
                    }
                }
                let dst = if callee.ret.is_some() && want_value {
                    Some(self.reg())
                } else {
                    None
                };
                self.emit(Instr::Call {
                    dst,
                    func: FuncId(pid.0),
                    args: ops,
                    addr_aps,
                    addr_slots,
                });
                dst.map(Operand::Reg)
            }
            Some(CallRes::Method {
                recv,
                name,
                recv_ty,
            }) => {
                let (recv, recv_ty) = (*recv, *recv_ty);
                let (m, _) = checked
                    .types
                    .resolve_method(recv_ty, name)
                    .expect("checker verified method");
                let m_params = &m.params;
                let m_ret = m.ret;
                let recv_op = self.lower_expr(recv);
                let mut ops = Vec::with_capacity(args.len() + 1);
                ops.push(recv_op);
                let mut addr_aps = Vec::new();
                let mut addr_slots = Vec::new();
                for (&a, (mode, pty)) in args.iter().zip(m_params.iter()) {
                    match mode {
                        ParamMode::Value => {
                            let aty = self.ty(a);
                            let op = self.lower_expr(a);
                            self.record_merge(*pty, aty);
                            ops.push(op);
                        }
                        ParamMode::Var => {
                            let op = self.lower_addr_arg(a, &mut addr_aps, &mut addr_slots);
                            ops.push(op);
                        }
                    }
                }
                // Receiver binding merges: an object of dynamic type `t`
                // flows into the self formal of the implementation bound at
                // `t` — merge each impl's self type with the subtype it is
                // bound at (not with the static receiver type, which would
                // needlessly collapse the whole hierarchy).
                for t in checked.types.subtypes(recv_ty) {
                    if let Some(&pid) = checked.method_impls.get(&(t, name.clone())) {
                        let self_ty = checked.proc(pid).locals[0].ty;
                        self.record_merge(self_ty, t);
                    }
                }
                let dst = if m_ret.is_some() && want_value {
                    Some(self.reg())
                } else {
                    None
                };
                self.emit(Instr::CallMethod {
                    dst,
                    method: name.clone(),
                    recv_ty,
                    args: ops,
                    addr_aps,
                    addr_slots,
                });
                dst.map(Operand::Reg)
            }
            Some(&CallRes::Builtin(b)) => self.lower_builtin(e, b, args, want_value),
            None => unreachable!("checker resolved every call"),
        }
    }

    /// Lowers a VAR actual: takes the address of the designator.
    fn lower_addr_arg(
        &mut self,
        a: ExprId,
        addr_aps: &mut Vec<ApId>,
        addr_slots: &mut Vec<SlotBase>,
    ) -> Operand {
        let place = self.lower_place(a);
        match &place.kind {
            LPlaceKind::Slot(addr) => {
                if let SlotBase::Local(v) = addr.base {
                    self.make_stack(v);
                }
                addr_slots.push(addr.base);
                let r = self.reg();
                self.emit(Instr::TakeAddrSlot {
                    dst: r,
                    addr: addr.clone(),
                });
                r.into()
            }
            LPlaceKind::Mem(addr) => {
                self.record_address_taken(&place.ap);
                let ap = self.aps.intern(place.ap.clone());
                addr_aps.push(ap);
                let r = self.reg();
                self.emit(Instr::TakeAddrMem {
                    dst: r,
                    addr: addr.clone(),
                    ap,
                });
                r.into()
            }
            LPlaceKind::Ind(loc) => *loc, // pass an incoming VAR param along
        }
    }

    fn lower_builtin(
        &mut self,
        e: ExprId,
        b: Builtin,
        args: &[ExprId],
        want_value: bool,
    ) -> Option<Operand> {
        let span = self.checked.ast.expr_span(e);
        match b {
            Builtin::New => {
                let ty = self.ty(args[0]);
                if self.allocated.insert(ty) {
                    self.allocated_log.push(ty);
                }
                let r = self.reg();
                if let TypeKind::Array { range: None, .. } = self.checked.types.kind(ty) {
                    let len = self.lower_expr(args[1]);
                    self.emit(Instr::NewArray { dst: r, ty, len });
                } else {
                    self.emit(Instr::New { dst: r, ty });
                }
                Some(r.into())
            }
            Builtin::Number => {
                let aty = self.ty(args[0]);
                let checked = Arc::clone(&self.checked);
                match checked.types.kind(aty) {
                    TypeKind::Array { range: None, .. } => {
                        let (op, bap) = self.lower_expr_with_ap(args[0]);
                        let mut ap = bap;
                        ap.steps.push(ApStep::DopeLen { base_ty: aty });
                        let ap = self.aps.intern(ap);
                        let r = self.reg();
                        // NUMBER is an explicit dope read, visible to RLE.
                        self.emit(Instr::LoadMem {
                            dst: r,
                            addr: MemAddr {
                                base: op,
                                offset: 0,
                                indices: vec![],
                            },
                            ap,
                            hidden: false,
                        });
                        Some(r.into())
                    }
                    &TypeKind::Array {
                        range: Some((lo, hi)),
                        ..
                    } => Some(Operand::ImmInt(hi - lo + 1)),
                    _ => {
                        self.error(span, "NUMBER of a non-array");
                        Some(Operand::ImmInt(0))
                    }
                }
            }
            Builtin::IsType | Builtin::Narrow => {
                let src = self.lower_expr(args[0]);
                let ty = self.ty(args[1]);
                let r = self.reg();
                if b == Builtin::IsType {
                    self.emit(Instr::TypeTest { dst: r, src, ty });
                } else {
                    self.emit(Instr::NarrowTo { dst: r, src, ty });
                }
                Some(r.into())
            }
            _ => {
                let op = match b {
                    Builtin::Ord => IntrinsicOp::Ord,
                    Builtin::Chr => IntrinsicOp::Chr,
                    Builtin::Abs => IntrinsicOp::Abs,
                    Builtin::Min => IntrinsicOp::Min,
                    Builtin::Max => IntrinsicOp::Max,
                    Builtin::TextLen => IntrinsicOp::TextLen,
                    Builtin::TextChar => IntrinsicOp::TextChar,
                    Builtin::IntToText => IntrinsicOp::IntToText,
                    Builtin::CharToText => IntrinsicOp::CharToText,
                    Builtin::Print => IntrinsicOp::Print,
                    Builtin::PrintInt => IntrinsicOp::PrintInt,
                    _ => unreachable!(),
                };
                let ops: Vec<Operand> = args.iter().map(|&a| self.lower_expr(a)).collect();
                let needs_dst =
                    want_value && !matches!(op, IntrinsicOp::Print | IntrinsicOp::PrintInt);
                let dst = if needs_dst { Some(self.reg()) } else { None };
                self.emit(Instr::Intrinsic { dst, op, args: ops });
                dst.map(Operand::Reg)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Instr;

    fn lower_src(src: &str) -> Program {
        let checked = mini_m3::compile(src).expect("compiles");
        lower(checked).expect("lowers")
    }

    fn count_instrs(p: &Program, pred: impl Fn(&Instr) -> bool) -> usize {
        p.funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| b.instrs.iter())
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn lowers_simple_module() {
        let p = lower_src("MODULE M; VAR x: INTEGER; BEGIN x := 1 + 2 END M.");
        assert_eq!(p.funcs.len(), 1);
        let main = p.func(p.main);
        assert_eq!(main.name, "<main>");
        assert!(main.instr_count() >= 2); // Bin + StoreSlot
    }

    #[test]
    fn field_load_gets_access_path() {
        let p = lower_src(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; g: T; END;
             VAR t: T; x: INTEGER;
             BEGIN t := NEW(T); x := t.g.f; END M.",
        );
        // t.g.f = two heap loads: t.g then (t.g).f
        assert_eq!(
            count_instrs(&p, |i| matches!(i, Instr::LoadMem { hidden: false, .. })),
            2
        );
        // The access paths should include one with two steps.
        let two_step = p.aps.iter().filter(|(_, ap)| ap.steps.len() == 2).count();
        assert!(two_step >= 1);
    }

    #[test]
    fn open_array_subscript_emits_hidden_dope_load() {
        let p = lower_src(
            "MODULE M;
             TYPE A = ARRAY OF INTEGER;
             VAR a: A; x: INTEGER;
             BEGIN a := NEW(A, 4); a[0] := 7; x := a[0]; END M.",
        );
        let hidden = count_instrs(&p, |i| matches!(i, Instr::LoadMem { hidden: true, .. }));
        assert_eq!(hidden, 2, "one bounds check per subscript");
        let visible = count_instrs(&p, |i| matches!(i, Instr::LoadMem { hidden: false, .. }));
        assert_eq!(visible, 1, "one element load");
        let stores = count_instrs(&p, |i| matches!(i, Instr::StoreMem { .. }));
        assert_eq!(stores, 1);
    }

    #[test]
    fn number_is_visible_dope_load() {
        let p = lower_src(
            "MODULE M;
             TYPE A = ARRAY OF INTEGER;
             VAR a: A; n: INTEGER;
             BEGIN a := NEW(A, 4); n := NUMBER(a); END M.",
        );
        assert_eq!(
            count_instrs(&p, |i| matches!(i, Instr::LoadMem { hidden: false, .. })),
            1
        );
    }

    #[test]
    fn var_actual_records_address_taken() {
        let p = lower_src(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Bump (VAR x: INTEGER) = BEGIN x := x + 1 END Bump;
             VAR t: T;
             BEGIN t := NEW(T); Bump(t.f); END M.",
        );
        let tt = p.types.by_name("T").unwrap();
        let f = p.symbols.lookup("f").unwrap();
        assert!(p.address_taken.fields.contains(&(tt, f)));
    }

    #[test]
    fn with_alias_records_address_taken() {
        let p = lower_src(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T;
             BEGIN t := NEW(T); WITH w = t.f DO w := 3 END; END M.",
        );
        let tt = p.types.by_name("T").unwrap();
        let f = p.symbols.lookup("f").unwrap();
        assert!(p.address_taken.fields.contains(&(tt, f)));
    }

    #[test]
    fn assignments_record_merges() {
        let p = lower_src(
            "MODULE M;
             TYPE T = OBJECT END; S1 = T OBJECT END; S2 = T OBJECT END; S3 = T OBJECT END;
             VAR t: T; s1: S1; s2: S2; s3: S3;
             BEGIN
               s1 := NEW(S1); s2 := NEW(S2); s3 := NEW(S3);
               t := s1;  (* merge (T, S1) *)
               t := s2;  (* merge (T, S2) *)
             END M.",
        );
        let t = p.types.by_name("T").unwrap();
        let s1 = p.types.by_name("S1").unwrap();
        let s2 = p.types.by_name("S2").unwrap();
        let s3 = p.types.by_name("S3").unwrap();
        assert!(p.merges.contains(&(t, s1)));
        assert!(p.merges.contains(&(t, s2)));
        assert!(!p.merges.iter().any(|&(a, b)| a == s3 || b == s3));
    }

    #[test]
    fn call_binding_records_merge() {
        let p = lower_src(
            "MODULE M;
             TYPE T = OBJECT END; S = T OBJECT END;
             PROCEDURE F (x: T) = BEGIN END F;
             VAR s: S;
             BEGIN s := NEW(S); F(s); END M.",
        );
        let t = p.types.by_name("T").unwrap();
        let s = p.types.by_name("S").unwrap();
        assert!(p.merges.contains(&(t, s)));
    }

    #[test]
    fn short_circuit_creates_blocks() {
        let p = lower_src(
            "MODULE M;
             VAR a, b: BOOLEAN; x: INTEGER;
             BEGIN IF a AND b THEN x := 1 END; END M.",
        );
        let main = p.func(p.main);
        assert!(main.blocks.len() >= 5);
    }

    #[test]
    fn while_loop_shape() {
        let p = lower_src(
            "MODULE M;
             VAR i: INTEGER;
             BEGIN i := 0; WHILE i < 10 DO i := i + 1 END; END M.",
        );
        let main = p.func(p.main);
        // entry (guard), body, exit — rotated form
        assert!(main.blocks.len() >= 3);
        // The loop back edge exists: some block jumps to a lower-numbered one.
        let mut has_back_edge = false;
        for (i, b) in main.blocks.iter().enumerate() {
            for s in b.term.successors() {
                if (s.0 as usize) <= i {
                    has_back_edge = true;
                }
            }
        }
        assert!(has_back_edge);
    }

    #[test]
    fn record_assignment_breaks_into_components() {
        let p = lower_src(
            "MODULE M;
             TYPE R = RECORD x, y: INTEGER; END; PR = REF R;
             VAR a, b: R; pr: PR;
             BEGIN
               pr := NEW(PR);
               a := b;
               pr^ := a;
             END M.",
        );
        // a := b: 2 slot loads + 2 slot stores; pr^ := a: 2 loads + 2 heap stores.
        assert_eq!(count_instrs(&p, |i| matches!(i, Instr::StoreMem { .. })), 2);
    }

    #[test]
    fn new_records_allocated_types() {
        let p = lower_src(
            "MODULE M;
             TYPE T = OBJECT END; S = T OBJECT END;
             VAR t: T;
             BEGIN t := NEW(S); END M.",
        );
        let s = p.types.by_name("S").unwrap();
        let t = p.types.by_name("T").unwrap();
        assert!(p.allocated_types.contains(&s));
        assert!(!p.allocated_types.contains(&t));
    }

    #[test]
    fn method_call_lowered_with_receiver() {
        let p = lower_src(
            "MODULE M;
             TYPE T = OBJECT v: INTEGER; METHODS get (): INTEGER := Get; END;
             PROCEDURE Get (self: T): INTEGER = BEGIN RETURN self.v END Get;
             VAR t: T; x: INTEGER;
             BEGIN t := NEW(T); x := t.get(); END M.",
        );
        assert_eq!(
            count_instrs(&p, |i| matches!(i, Instr::CallMethod { .. })),
            1
        );
        let t = p.types.by_name("T").unwrap();
        assert!(p.method_impls.contains_key(&(t, "get".to_string())));
    }

    #[test]
    fn for_loop_canonical_index_ap() {
        let p = lower_src(
            "MODULE M;
             TYPE A = ARRAY OF INTEGER;
             VAR a: A; s: INTEGER;
             BEGIN
               a := NEW(A, 10);
               FOR i := 0 TO 9 DO s := s + a[i] END;
             END M.",
        );
        // The subscript AP a[i] should be canonical (Var index).
        let has_canonical_index = p.aps.iter().any(|(_, ap)| {
            ap.steps.iter().any(|s| {
                matches!(
                    s,
                    ApStep::Index {
                        index: ApIndex::Var(_),
                        ..
                    }
                )
            }) && ap.is_canonical()
        });
        assert!(has_canonical_index);
    }

    #[test]
    fn var_param_access_is_indirect() {
        let p = lower_src(
            "MODULE M;
             PROCEDURE F (VAR x: INTEGER) = BEGIN x := x + 1 END F;
             VAR g: INTEGER;
             BEGIN F(g); END M.",
        );
        assert!(count_instrs(&p, |i| matches!(i, Instr::LoadInd { .. })) >= 1);
        assert!(count_instrs(&p, |i| matches!(i, Instr::StoreInd { .. })) >= 1);
        assert!(count_instrs(&p, |i| matches!(i, Instr::TakeAddrSlot { .. })) == 1);
    }

    #[test]
    fn heap_ref_sites_excludes_hidden() {
        let p = lower_src(
            "MODULE M;
             TYPE A = ARRAY OF INTEGER;
             VAR a: A; x: INTEGER;
             BEGIN a := NEW(A, 4); x := a[2]; END M.",
        );
        let sites = p.heap_ref_sites();
        assert_eq!(sites.len(), 1, "only the visible element load");
    }

    /// A module exercising every remap surface: temp roots (WITH aliases,
    /// object bases), opaque indices, field symbols across multiple units,
    /// text literals, methods, open arrays, VAR actuals.
    const PARALLEL_SRC: &str = "MODULE M;
         TYPE Box = OBJECT val: INTEGER; next: Box; METHODS bump () := Bump; END;
              A = ARRAY OF INTEGER;
         VAR root: Box; arr: A; total: INTEGER; greet: TEXT;
         PROCEDURE Bump (self: Box) =
           BEGIN self.val := self.val + 1 END Bump;
         PROCEDURE Mk (v: INTEGER): Box =
           VAR b: Box;
           BEGIN b := NEW(Box); b.val := v; RETURN b END Mk;
         PROCEDURE Touch (VAR x: INTEGER) =
           BEGIN x := x + 1 END Touch;
         PROCEDURE Sum (b: Box): INTEGER =
           VAR s: INTEGER;
           BEGIN
             WITH w = b.val DO s := s + w END;
             Touch(b.val);
             RETURN s
           END Sum;
         BEGIN
           root := Mk(7);
           root.next := Mk(8);
           root.bump();
           arr := NEW(A, 4);
           arr[total] := Sum(root);
           greet := \"hi\" & \"there\";
         END M.";

    #[test]
    fn detached_absorb_matches_serial() {
        let serial = lower_src(PARALLEL_SRC);
        for workers in [2, 3, 8] {
            let checked = mini_m3::compile(PARALLEL_SRC).expect("compiles");
            let par = lower_parallel_with_workers(checked, workers).expect("lowers");
            assert_eq!(
                crate::pretty::program(&serial),
                crate::pretty::program(&par),
                "parallel lowering with {workers} workers diverged from serial"
            );
        }
    }

    #[test]
    fn absorb_captures_same_effects_as_lower_next() {
        let checked = Arc::new(mini_m3::compile(PARALLEL_SRC).expect("compiles"));
        let n = checked.procs.len();
        let mut serial = ModuleLowerer::new_shared(Arc::clone(&checked));
        let mut par = ModuleLowerer::new_shared(Arc::clone(&checked));
        let units = lower_units_detached(&checked, 2);
        for (i, unit) in units.into_iter().enumerate() {
            let fresh = serial.lower_next();
            let absorbed = par.absorb_next_captured(unit);
            assert_eq!(
                fresh.effects, absorbed.effects,
                "unit {i}/{n} effects diverged"
            );
            assert_eq!(fresh.clean, absorbed.clean, "unit {i} cleanliness diverged");
        }
    }

    #[test]
    fn effective_workers_clamps_to_items_and_cores() {
        // Single-core hosts never spawn (the pairs.scaling fix).
        assert_eq!(effective_workers_for(8, 100, 1), 1);
        // Never more workers than items.
        assert_eq!(effective_workers_for(8, 3, 16), 3);
        // Never more than the host exposes.
        assert_eq!(effective_workers_for(8, 100, 4), 4);
        // Zero requests still run the work.
        assert_eq!(effective_workers_for(0, 100, 4), 1);
        // No items: one worker, no division by zero.
        assert_eq!(effective_workers_for(4, 0, 4), 1);
    }
}
