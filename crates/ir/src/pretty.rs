//! Human-readable IR dumps, mainly for debugging and golden tests.

use crate::ir::*;
use crate::path::{ApRoot, FuncId};
use std::fmt::Write as _;

/// Renders one function.
pub fn function(prog: &Program, fid: FuncId) -> String {
    let f = prog.func(fid);
    let mut out = String::new();
    let _ = writeln!(out, "func {} ({} params) {{", f.name, f.n_params);
    for (i, v) in f.vars.iter().enumerate() {
        let _ = writeln!(
            out,
            "  var v{i}: {} size={} {:?} ; {}",
            prog.types.display(v.ty),
            v.size,
            v.class,
            v.name
        );
    }
    for b in f.block_ids() {
        let _ = writeln!(out, "{b}:");
        for instr in &f.block(b).instrs {
            let _ = writeln!(out, "  {}", render_instr(prog, fid, instr));
        }
        let _ = writeln!(out, "  {}", render_term(&f.block(b).term));
    }
    out.push_str("}\n");
    out
}

/// Renders the whole program.
pub fn program(prog: &Program) -> String {
    let mut out = String::new();
    for fid in prog.func_ids() {
        out.push_str(&function(prog, fid));
        out.push('\n');
    }
    out
}

/// Renders an access path with variable names.
pub fn access_path(prog: &Program, ap: crate::path::ApId) -> String {
    prog.aps.display(ap, &prog.symbols, |root| match root {
        ApRoot::Local { func, var } => prog
            .func(*func)
            .vars
            .get(var.0 as usize)
            .map(|v| v.name.clone())
            .unwrap_or_else(|| format!("{var}")),
        ApRoot::Global(g) => prog
            .globals
            .get(g.0 as usize)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("g{}", g.0)),
        ApRoot::Temp(t) => format!("$t{t}"),
    })
}

fn render_slot(addr: &SlotAddr) -> String {
    let base = match addr.base {
        SlotBase::Local(v) => format!("{v}"),
        SlotBase::Global(g) => format!("g{}", g.0),
    };
    let mut s = base;
    if addr.offset != 0 {
        let _ = write!(s, "+{}", addr.offset);
    }
    for (op, lo, scale) in &addr.indices {
        let _ = write!(s, "[({op}-{lo})*{scale}]");
    }
    s
}

fn render_mem(addr: &MemAddr) -> String {
    let mut s = format!("[{}+{}", addr.base, addr.offset);
    for (op, lo, scale) in &addr.indices {
        let _ = write!(s, "+({op}-{lo})*{scale}");
    }
    s.push(']');
    s
}

fn render_instr(prog: &Program, _fid: FuncId, instr: &Instr) -> String {
    match instr {
        Instr::ConstText { dst, text } => {
            format!("{dst} := text {:?}", prog.texts[*text as usize])
        }
        Instr::Copy { dst, src } => format!("{dst} := {src}"),
        Instr::Un { dst, op, src } => format!("{dst} := {op:?} {src}"),
        Instr::Bin { dst, op, lhs, rhs } => format!("{dst} := {lhs} {op} {rhs}"),
        Instr::LoadSlot { dst, addr } => format!("{dst} := slot {}", render_slot(addr)),
        Instr::StoreSlot { addr, src } => format!("slot {} := {src}", render_slot(addr)),
        Instr::LoadMem {
            dst,
            addr,
            ap,
            hidden,
        } => format!(
            "{dst} := load{} {} ; {}",
            if *hidden { "(hidden)" } else { "" },
            render_mem(addr),
            access_path(prog, *ap)
        ),
        Instr::StoreMem { addr, src, ap } => format!(
            "store {} := {src} ; {}",
            render_mem(addr),
            access_path(prog, *ap)
        ),
        Instr::LoadInd { dst, loc } => format!("{dst} := ind *{loc}"),
        Instr::StoreInd { loc, src } => format!("ind *{loc} := {src}"),
        Instr::TakeAddrSlot { dst, addr } => format!("{dst} := &slot {}", render_slot(addr)),
        Instr::TakeAddrMem { dst, addr, ap } => format!(
            "{dst} := &mem {} ; {}",
            render_mem(addr),
            access_path(prog, *ap)
        ),
        Instr::New { dst, ty } => format!("{dst} := new {}", prog.types.display(*ty)),
        Instr::NewArray { dst, ty, len } => {
            format!("{dst} := newarray {} len={len}", prog.types.display(*ty))
        }
        Instr::Call {
            dst, func, args, ..
        } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            let callee = &prog.func(*func).name;
            match dst {
                Some(d) => format!("{d} := call {callee}({})", args.join(", ")),
                None => format!("call {callee}({})", args.join(", ")),
            }
        }
        Instr::CallMethod {
            dst, method, args, ..
        } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            match dst {
                Some(d) => format!("{d} := callm .{method}({})", args.join(", ")),
                None => format!("callm .{method}({})", args.join(", ")),
            }
        }
        Instr::Intrinsic { dst, op, args } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            match dst {
                Some(d) => format!("{d} := {op:?}({})", args.join(", ")),
                None => format!("{op:?}({})", args.join(", ")),
            }
        }
        Instr::TypeTest { dst, src, ty } => {
            format!("{dst} := istype {src} {}", prog.types.display(*ty))
        }
        Instr::NarrowTo { dst, src, ty } => {
            format!("{dst} := narrow {src} {}", prog.types.display(*ty))
        }
    }
}

fn render_term(t: &Terminator) -> String {
    match t {
        Terminator::Jump(b) => format!("jump {b}"),
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => format!("branch {cond} ? {then_bb} : {else_bb}"),
        Terminator::Return(None) => "ret".to_string(),
        Terminator::Return(Some(v)) => format!("ret {v}"),
    }
}

#[cfg(test)]
mod tests {
    use crate::lower::lower;

    #[test]
    fn renders_program() {
        let checked = mini_m3::compile(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; x: INTEGER;
             BEGIN t := NEW(T); x := t.f; END M.",
        )
        .unwrap();
        let prog = lower(checked).unwrap();
        let s = super::program(&prog);
        assert!(s.contains("func <main>"));
        assert!(s.contains("new T"));
        assert!(s.contains("t.f"), "load annotated with access path: {s}");
    }
}
