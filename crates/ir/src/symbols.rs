//! Interned field-name symbols.
//!
//! The alias analyses compare field names on every FieldTypeDecl query
//! (case 2 of Table 2) and key the `AddressTaken` facts by
//! `(type, field)`. Interning the names once at lowering time turns all
//! of those comparisons and hash lookups into `u32` operations: an
//! [`ApStep::Field`](crate::path::ApStep::Field) carries a [`Symbol`],
//! and the program's [`SymbolTable`] maps it back to the source spelling
//! for rendering and diagnostics.
//!
//! The table is append-only, so symbols handed out earlier stay valid as
//! later passes (e.g. shadow-path interning in the limit study) keep
//! interning.

use std::collections::HashMap;
use std::fmt;

/// An interned field name. Two fields have the same spelling iff their
/// symbols are equal — the paper assumes globally meaningful field names,
/// so symbol equality *is* name equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// An append-only string interner for field names.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    intern: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table with room for `cap` symbols.
    pub fn with_capacity(cap: usize) -> Self {
        SymbolTable {
            names: Vec::with_capacity(cap),
            intern: HashMap::with_capacity(cap),
        }
    }

    /// Interns `name`, returning its symbol (stable across repeat calls).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.intern.get(name) {
            return s;
        }
        let s = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.intern.insert(name.to_string(), s);
        s
    }

    /// The spelling of `s`.
    pub fn resolve(&self, s: Symbol) -> &str {
        &self.names[s.0 as usize]
    }

    /// Looks up an already-interned name without interning it.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.intern.get(name).copied()
    }

    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(symbol, spelling)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_distinct() {
        let mut t = SymbolTable::new();
        let f = t.intern("f");
        let g = t.intern("g");
        assert_ne!(f, g);
        assert_eq!(t.intern("f"), f);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(f), "f");
        assert_eq!(t.lookup("g"), Some(g));
        assert_eq!(t.lookup("h"), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(a, "a"), (b, "b")]);
    }
}
