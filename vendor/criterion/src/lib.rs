//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, vendored so the workspace builds with no network access.
//!
//! It implements exactly the API subset the `tbaa-bench` benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with a simple calibrated wall-clock measurement loop instead
//! of criterion's statistical machinery. Swap the `criterion` entry in
//! the workspace `Cargo.toml` back to the crates.io release to get the
//! full harness (HTML reports, outlier analysis) when a registry is
//! reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-sample timing state handed to the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, recording the total elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier in criterion's `name/parameter` form.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// Calibrates an iteration count to a ~25 ms sample, then takes
/// `samples` timed samples and reports best / mean per-iteration time.
fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    const TARGET: Duration = Duration::from_millis(25);
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Calibration: grow the iteration count until one sample is long
    // enough to time reliably.
    loop {
        f(&mut b);
        if b.elapsed >= TARGET || b.iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (TARGET.as_nanos() / b.elapsed.as_nanos().max(1) + 1) as u64
        };
        b.iters = (b.iters * grow.clamp(2, 16)).min(1 << 20);
    }
    let iters = b.iters;
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        f(&mut b);
        best = best.min(b.elapsed);
        total += b.elapsed;
    }
    let per = |d: Duration| d.as_secs_f64() / iters as f64;
    println!(
        "bench {label:<44} best {}  mean {}  ({samples} samples x {iters} iters)",
        human(per(best)),
        human(per(total) / samples as f64),
    );
}

fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:8.3} s ")
    } else if secs >= 1e-3 {
        format!("{:8.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:8.3} µs", secs * 1e6)
    } else {
        format!("{:8.1} ns", secs * 1e9)
    }
}

/// Collects bench functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Expands to `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("build", 42).to_string(), "build/42");
    }
}
