//! # tbaa-repro — *Type-Based Alias Analysis*, reproduced
//!
//! A from-scratch Rust reproduction of Amer Diwan, Kathryn S. McKinley &
//! J. Eliot B. Moss, **"Type-Based Alias Analysis"**, PLDI 1998: the
//! three type-based alias analyses (TypeDecl, FieldTypeDecl,
//! SMFieldTypeRefs), every substrate they need (a Modula-3-subset front
//! end, a typed IR, redundant load elimination, method resolution and
//! inlining, an Alpha-flavoured simulator, an ATOM-style load tracer),
//! the ten-benchmark evaluation suite, and a harness regenerating every
//! table and figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`lang`] — the MiniM3 front end (`mini-m3`);
//! * [`ir`] — lowering, access paths, CFG (`tbaa-ir`);
//! * [`alias`] — the paper's analyses (`tbaa`);
//! * [`opt`] — RLE, mod-ref, devirtualization, inlining (`tbaa-opt`);
//! * [`sim`] — interpreter, cache model, limit study (`tbaa-sim`);
//! * [`benchsuite`] — the ten benchmark programs (`tbaa-benchsuite`);
//! * [`server`] — `tbaad`, the persistent alias-query daemon, and its
//!   client (`tbaa-server`);
//! * [`router`] — `tbaa-router`, a session-sharded front tier that
//!   scales `tbaad` horizontally behind the same wire protocol
//!   (`tbaa-router`).
//!
//! ## Quick start
//!
//! ```
//! use tbaa_repro::alias::{AliasAnalysis, Level, Tbaa, World};
//!
//! // Figure 1 of the paper.
//! let prog = tbaa_repro::ir::compile_to_ir(
//!     "MODULE Fig1;
//!      TYPE
//!        T  = OBJECT f, g: T; END;
//!        S1 = T OBJECT END;
//!        S2 = T OBJECT END;
//!      VAR t: T; s: S1; u: S2; x: T;
//!      BEGIN
//!        t := NEW(T); s := NEW(S1); u := NEW(S2);
//!        t.f := t; s.f := s; u.f := u;
//!        x := t.f;
//!      END Fig1.")?;
//! let analysis = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
//! // `s.f` and `u.f` cannot alias: S1 and S2 have no common subtype.
//! let sites = prog.heap_ref_sites();
//! let sf = sites.iter().find(|s| tbaa_repro::ir::pretty::access_path(&prog, s.1) == "s.f").unwrap();
//! let uf = sites.iter().find(|s| tbaa_repro::ir::pretty::access_path(&prog, s.1) == "u.f").unwrap();
//! assert!(!analysis.may_alias(&prog.aps, sf.1, uf.1));
//! # Ok::<(), tbaa_repro::lang::Diagnostics>(())
//! ```
//!
//! See `examples/` for runnable walkthroughs and the `paper-tables`
//! binary (in `crates/bench`) for the full evaluation.

pub use mini_m3 as lang;
pub use tbaa as alias;
pub use tbaa_benchsuite as benchsuite;
pub use tbaa_ir as ir;
pub use tbaa_opt as opt;
pub use tbaa_router as router;
pub use tbaa_server as server;
pub use tbaa_sim as sim;

// The daemon/router API most callers want, at the crate root: the typed
// reply enum and the two config builders.
pub use tbaa_router::{BackendSpec, RouterConfig, RouterConfigBuilder};
pub use tbaa_server::{Reply, ServerConfig, ServerConfigBuilder};

/// A builder for the compile → analyze → optimize pipeline.
///
/// Configure the analysis precision with [`level`](Pipeline::level) and
/// [`world`](Pipeline::world), pick the optimization passes with
/// [`optimize`](Pipeline::optimize), then [`run`](Pipeline::run):
///
/// ```
/// use tbaa_repro::{alias::Level, alias::World, opt::OptOptions, Pipeline};
///
/// let result = Pipeline::new(
///     "MODULE M;
///      TYPE T = OBJECT f: INTEGER; END;
///      VAR t: T; x, y: INTEGER;
///      BEGIN t := NEW(T); t.f := 1; x := t.f; y := t.f; END M.")
///     .level(Level::SmFieldTypeRefs)
///     .world(World::Closed)
///     .optimize(OptOptions::builder().rle(true).build())
///     .run()?;
/// assert_eq!(result.report.rle.eliminated, 2);
/// # Ok::<(), tbaa_repro::lang::Diagnostics>(())
/// ```
///
/// The pipeline's `level`/`world` apply to every pass and to the final
/// analysis handle; any `level`/`world` inside the passed
/// [`OptOptions`](opt::OptOptions) are overridden so there is a single
/// source of truth.
#[derive(Debug, Clone)]
pub struct Pipeline<'a> {
    source: &'a str,
    level: alias::Level,
    world: alias::World,
    opts: Option<opt::OptOptions>,
}

/// What a [`Pipeline`] run produced.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The (possibly optimized) program.
    pub program: ir::Program,
    /// An alias-analysis handle over `program`, at the pipeline's
    /// level/world, ready for `may_alias` queries.
    pub analysis: alias::Tbaa,
    /// What the optimization passes did (all zeros when no passes ran).
    pub report: opt::OptReport,
}

impl<'a> Pipeline<'a> {
    /// A pipeline over `source` with the paper's defaults: the most
    /// precise analysis (`SmFieldTypeRefs`), closed world, no
    /// optimization passes.
    pub fn new(source: &'a str) -> Self {
        Pipeline {
            source,
            level: alias::Level::SmFieldTypeRefs,
            world: alias::World::Closed,
            opts: None,
        }
    }

    /// Sets the alias-analysis precision level.
    pub fn level(mut self, level: alias::Level) -> Self {
        self.level = level;
        self
    }

    /// Sets the closed- or open-world assumption.
    pub fn world(mut self, world: alias::World) -> Self {
        self.world = world;
        self
    }

    /// Enables optimization with the given pass selection. The options'
    /// `level`/`world` are replaced by the pipeline's at
    /// [`run`](Pipeline::run) time.
    pub fn optimize(mut self, opts: opt::OptOptions) -> Self {
        self.opts = Some(opts);
        self
    }

    /// Compiles, optimizes (if requested), and builds the final analysis.
    ///
    /// # Errors
    ///
    /// Returns front-end diagnostics if the source does not compile.
    pub fn run(self) -> Result<PipelineResult, lang::Diagnostics> {
        let mut program = ir::compile_to_ir(self.source)?;
        let report = match self.opts {
            Some(mut opts) => {
                opts.level = self.level;
                opts.world = self.world;
                opt::optimize(&mut program, &opts)
            }
            None => opt::OptReport::default(),
        };
        let analysis = alias::Tbaa::build(&program, self.level, self.world);
        Ok(PipelineResult {
            program,
            analysis,
            report,
        })
    }
}

/// Compiles MiniM3 source, builds the requested analysis level, runs RLE,
/// and returns the optimized program with the RLE statistics — the
/// paper's headline pipeline in one call.
///
/// # Errors
///
/// Returns front-end diagnostics if the source does not compile.
#[deprecated(since = "0.2.0", note = "use `Pipeline::new(source).level(..).world(..).optimize(..).run()`")]
pub fn compile_and_optimize(
    source: &str,
    level: alias::Level,
    world: alias::World,
) -> Result<(ir::Program, opt::RleStats), lang::Diagnostics> {
    let result = Pipeline::new(source)
        .level(level)
        .world(world)
        .optimize(opt::OptOptions::builder().rle(true).build())
        .run()?;
    Ok((result.program, result.report.rle))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = "MODULE M;
         TYPE T = OBJECT f: INTEGER; END;
         VAR t: T; x, y: INTEGER;
         BEGIN t := NEW(T); t.f := 1; x := t.f; y := t.f; END M.";

    #[test]
    #[allow(deprecated)]
    fn compile_and_optimize_smoke() {
        let (prog, stats) = compile_and_optimize(
            SMOKE,
            alias::Level::SmFieldTypeRefs,
            alias::World::Closed,
        )
        .unwrap();
        assert_eq!(stats.eliminated, 2);
        assert!(prog.funcs.len() == 1);
    }

    #[test]
    fn pipeline_matches_deprecated_wrapper() {
        let result = Pipeline::new(SMOKE)
            .level(alias::Level::SmFieldTypeRefs)
            .world(alias::World::Closed)
            .optimize(opt::OptOptions::builder().rle(true).build())
            .run()
            .unwrap();
        assert_eq!(result.report.rle.eliminated, 2);
        assert!(result.program.funcs.len() == 1);
    }

    #[test]
    fn pipeline_without_optimize_reports_nothing() {
        let result = Pipeline::new(SMOKE).run().unwrap();
        assert_eq!(result.report, opt::OptReport::default());
        // The analysis handle answers queries over the compiled program.
        let sites = result.program.heap_ref_sites();
        assert!(!sites.is_empty());
    }

    #[test]
    fn pipeline_level_world_override_the_options() {
        // The options carry a conflicting level/world; the pipeline's win.
        let opts = opt::OptOptions::builder()
            .rle(true)
            .level(alias::Level::TypeDecl)
            .world(alias::World::Open)
            .build();
        let precise = Pipeline::new(SMOKE)
            .level(alias::Level::SmFieldTypeRefs)
            .world(alias::World::Closed)
            .optimize(opts)
            .run()
            .unwrap();
        assert_eq!(precise.report.rle.eliminated, 2);
    }

    #[test]
    fn pipeline_surfaces_diagnostics() {
        assert!(Pipeline::new("MODULE Broken").run().is_err());
    }
}
