//! # tbaa-repro — *Type-Based Alias Analysis*, reproduced
//!
//! A from-scratch Rust reproduction of Amer Diwan, Kathryn S. McKinley &
//! J. Eliot B. Moss, **"Type-Based Alias Analysis"**, PLDI 1998: the
//! three type-based alias analyses (TypeDecl, FieldTypeDecl,
//! SMFieldTypeRefs), every substrate they need (a Modula-3-subset front
//! end, a typed IR, redundant load elimination, method resolution and
//! inlining, an Alpha-flavoured simulator, an ATOM-style load tracer),
//! the ten-benchmark evaluation suite, and a harness regenerating every
//! table and figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`lang`] — the MiniM3 front end (`mini-m3`);
//! * [`ir`] — lowering, access paths, CFG (`tbaa-ir`);
//! * [`alias`] — the paper's analyses (`tbaa`);
//! * [`opt`] — RLE, mod-ref, devirtualization, inlining (`tbaa-opt`);
//! * [`sim`] — interpreter, cache model, limit study (`tbaa-sim`);
//! * [`benchsuite`] — the ten benchmark programs (`tbaa-benchsuite`).
//!
//! ## Quick start
//!
//! ```
//! use tbaa_repro::alias::{AliasAnalysis, Level, Tbaa, World};
//!
//! // Figure 1 of the paper.
//! let prog = tbaa_repro::ir::compile_to_ir(
//!     "MODULE Fig1;
//!      TYPE
//!        T  = OBJECT f, g: T; END;
//!        S1 = T OBJECT END;
//!        S2 = T OBJECT END;
//!      VAR t: T; s: S1; u: S2; x: T;
//!      BEGIN
//!        t := NEW(T); s := NEW(S1); u := NEW(S2);
//!        t.f := t; s.f := s; u.f := u;
//!        x := t.f;
//!      END Fig1.")?;
//! let analysis = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
//! // `s.f` and `u.f` cannot alias: S1 and S2 have no common subtype.
//! let sites = prog.heap_ref_sites();
//! let sf = sites.iter().find(|s| tbaa_repro::ir::pretty::access_path(&prog, s.1) == "s.f").unwrap();
//! let uf = sites.iter().find(|s| tbaa_repro::ir::pretty::access_path(&prog, s.1) == "u.f").unwrap();
//! assert!(!analysis.may_alias(&prog.aps, sf.1, uf.1));
//! # Ok::<(), tbaa_repro::lang::Diagnostics>(())
//! ```
//!
//! See `examples/` for runnable walkthroughs and the `paper-tables`
//! binary (in `crates/bench`) for the full evaluation.

pub use mini_m3 as lang;
pub use tbaa as alias;
pub use tbaa_benchsuite as benchsuite;
pub use tbaa_ir as ir;
pub use tbaa_opt as opt;
pub use tbaa_sim as sim;

/// Compiles MiniM3 source, builds the requested analysis level, runs RLE,
/// and returns the optimized program with the RLE statistics — the
/// paper's headline pipeline in one call.
///
/// # Errors
///
/// Returns front-end diagnostics if the source does not compile.
pub fn compile_and_optimize(
    source: &str,
    level: alias::Level,
    world: alias::World,
) -> Result<(ir::Program, opt::RleStats), lang::Diagnostics> {
    let mut prog = ir::compile_to_ir(source)?;
    let analysis = alias::Tbaa::build(&prog, level, world);
    let stats = opt::rle::run_rle(&mut prog, &analysis);
    Ok((prog, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_and_optimize_smoke() {
        let (prog, stats) = compile_and_optimize(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; x, y: INTEGER;
             BEGIN t := NEW(T); t.f := 1; x := t.f; y := t.f; END M.",
            alias::Level::SmFieldTypeRefs,
            alias::World::Closed,
        )
        .unwrap();
        assert_eq!(stats.eliminated, 2);
        assert!(prog.funcs.len() == 1);
    }
}
