//! `tbaac` — a command-line driver for the MiniM3 → TBAA → RLE pipeline.
//!
//! ```text
//! tbaac check  <file.m3>                     parse + type-check
//! tbaac ir     <file.m3> [opts]              dump the (optimized) IR
//! tbaac run    <file.m3> [opts]              execute and print counters
//! tbaac sim    <file.m3> [opts]              simulate (cycles + cache)
//! tbaac alias  <file.m3> [--level L]         list heap refs + alias pairs
//!
//! opts: --level typedecl|fields|merges   (default merges)
//!       --world closed|open              (default closed)
//!       -O                               run RLE
//!       --pre                            run RLE + PRE
//!       --full                           devirt + inline + RLE
//!       --steensgaard                    drive RLE with Steensgaard
//! ```

use std::process::ExitCode;
use tbaa_repro::alias::{AliasAnalysis, Level, Steensgaard, Tbaa, World};
use tbaa_repro::ir::{self, pretty, Program};
use tbaa_repro::opt::{self, OptOptions};
use tbaa_repro::sim;
use tbaa_repro::sim::interp::{run, NullHook, RunConfig};

struct Opts {
    level: Level,
    world: World,
    rle: bool,
    pre: bool,
    full: bool,
    steensgaard: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(file)) = (args.first(), args.get(1)) else {
        eprintln!("usage: tbaac <check|ir|run|sim|alias> <file.m3> [options]");
        return ExitCode::FAILURE;
    };
    let mut opts = Opts {
        level: Level::SmFieldTypeRefs,
        world: World::Closed,
        rle: false,
        pre: false,
        full: false,
        steensgaard: false,
    };
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--level" => {
                i += 1;
                opts.level = match args.get(i).map(String::as_str) {
                    Some("typedecl") => Level::TypeDecl,
                    Some("fields") => Level::FieldTypeDecl,
                    Some("merges") => Level::SmFieldTypeRefs,
                    other => {
                        eprintln!("unknown level {other:?}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--world" => {
                i += 1;
                opts.world = match args.get(i).map(String::as_str) {
                    Some("closed") => World::Closed,
                    Some("open") => World::Open,
                    other => {
                        eprintln!("unknown world {other:?}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "-O" => opts.rle = true,
            "--pre" => opts.pre = true,
            "--full" => opts.full = true,
            "--steensgaard" => opts.steensgaard = true,
            other => {
                eprintln!("unknown option `{other}`");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut prog = match ir::compile_to_ir(&source) {
        Ok(p) => p,
        Err(diags) => {
            let map = tbaa_repro::lang::span::LineMap::new(&source);
            eprint!("{}", diags.render(&map));
            return ExitCode::FAILURE;
        }
    };

    if cmd == "check" {
        println!(
            "{}: ok ({} procedures, {} instructions, {} heap reference sites)",
            file,
            prog.funcs.len(),
            prog.instr_count(),
            prog.heap_ref_sites().len()
        );
        return ExitCode::SUCCESS;
    }

    apply_opts(&mut prog, &opts);

    match cmd.as_str() {
        "ir" => print!("{}", pretty::program(&prog)),
        "run" => match run(&prog, &mut NullHook, RunConfig::default()) {
            Ok(out) => {
                println!("{}", out.output);
                eprintln!(
                    "instructions {} | heap loads {} | heap stores {} | \
                         other loads {} | allocs {} ({} cells)",
                    out.counts.instructions,
                    out.counts.heap_loads,
                    out.counts.heap_stores,
                    out.counts.other_loads,
                    out.counts.allocs,
                    out.heap_cells
                );
            }
            Err(e) => {
                eprintln!("runtime error: {e}");
                return ExitCode::FAILURE;
            }
        },
        "sim" => match sim::simulate(&prog, RunConfig::default()) {
            Ok((counts, cache, cycles)) => {
                println!(
                    "cycles {cycles:.0} | instructions {} | loads {} | miss ratio {:.2}%",
                    counts.instructions,
                    counts.heap_loads + counts.other_loads,
                    100.0 * cache.miss_ratio()
                );
            }
            Err(e) => {
                eprintln!("runtime error: {e}");
                return ExitCode::FAILURE;
            }
        },
        "alias" => {
            let analysis: Box<dyn AliasAnalysis> = if opts.steensgaard {
                Box::new(Steensgaard::build(&prog))
            } else {
                Box::new(Tbaa::build(&prog, opts.level, opts.world))
            };
            println!("heap reference expressions:");
            for (f, ap, is_store) in prog.heap_ref_sites() {
                println!(
                    "  {} {:<24} in {}",
                    if is_store { "store" } else { "load " },
                    pretty::access_path(&prog, ap),
                    prog.func(f).name
                );
            }
            let counts = tbaa_repro::alias::count_alias_pairs(&prog, analysis.as_ref());
            println!(
                "{}: {} references, {} local pairs, {} global pairs",
                analysis.name(),
                counts.references,
                counts.local_pairs,
                counts.global_pairs
            );
        }
        other => {
            eprintln!("unknown command `{other}`");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn apply_opts(prog: &mut Program, opts: &Opts) {
    if opts.full {
        let report = opt::optimize(prog, &OptOptions::full(opts.level));
        eprintln!(
            "full pipeline: devirtualized {}, inlined {}, RLE removed {}",
            report.devirt.resolved,
            report.inline.inlined,
            report.rle.removed()
        );
        return;
    }
    if opts.pre {
        let (rle, pre) = if opts.steensgaard {
            let a = Steensgaard::build(prog);
            opt::pre::run_rle_with_pre(prog, &a)
        } else {
            let a = Tbaa::build(prog, opts.level, opts.world);
            opt::pre::run_rle_with_pre(prog, &a)
        };
        eprintln!(
            "RLE+PRE: removed {} loads ({} compensating inserts)",
            rle.removed(),
            pre.inserted
        );
        return;
    }
    if opts.rle {
        let stats = if opts.steensgaard {
            let a = Steensgaard::build(prog);
            opt::rle::run_rle(prog, &a)
        } else {
            let a = Tbaa::build(prog, opts.level, opts.world);
            opt::rle::run_rle(prog, &a)
        };
        eprintln!(
            "RLE: hoisted {}, eliminated {}",
            stats.hoisted, stats.eliminated
        );
    }
}
