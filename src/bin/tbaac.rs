//! `tbaac` — a command-line driver for the MiniM3 → TBAA → RLE pipeline.
//!
//! ```text
//! tbaac check  <file.m3>                     parse + type-check
//! tbaac ir     <file.m3> [opts]              dump the (optimized) IR
//! tbaac run    <file.m3> [opts]              execute and print counters
//! tbaac sim    <file.m3> [opts]              simulate (cycles + cache)
//! tbaac alias  <file.m3> [--level L]         list heap refs + alias pairs
//! tbaac serve  [--addr A] [...]              run the tbaad daemon in-process
//! tbaac route  [--addr A] [--shards N] [...] run the tbaa-router front tier
//! tbaac query  [--addr A] <verb> [...]       one-shot client against tbaad
//!
//! opts: --level typedecl|fields|merges   (default merges)
//!       --world closed|open              (default closed)
//!       -O                               run RLE
//!       --pre                            run RLE + PRE
//!       --full                           devirt + inline + RLE
//!       --steensgaard                    drive RLE with Steensgaard
//!
//! query verbs (program from --bench NAME [--scale N] or --file F):
//!       alias AP1 AP2      one may-alias verdict
//!       pairs              Table-5 style pair counts
//!       rle                static RLE report
//!       paths              list addressable access paths
//!       stats              server metrics snapshot
//! ```

use std::process::ExitCode;
use tbaa_repro::alias::{AliasAnalysis, Level, Steensgaard, Tbaa, World};
use tbaa_repro::ir::{self, pretty, Program};
use tbaa_repro::opt::{self, OptOptions};
use tbaa_repro::server;
use tbaa_repro::sim;
use tbaa_repro::sim::interp::{run, NullHook, RunConfig};

/// Where `tbaac serve` listens and `tbaac query` connects by default.
const DEFAULT_ADDR: &str = "127.0.0.1:4980";

struct Opts {
    level: Level,
    world: World,
    rle: bool,
    pre: bool,
    full: bool,
    steensgaard: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return cmd_serve(&args[1..]),
        Some("route") => return cmd_route(&args[1..]),
        Some("query") => return cmd_query(&args[1..]),
        _ => {}
    }
    let (Some(cmd), Some(file)) = (args.first(), args.get(1)) else {
        eprintln!("usage: tbaac <check|ir|run|sim|alias|serve|route|query> <file.m3> [options]");
        return ExitCode::FAILURE;
    };
    let mut opts = Opts {
        level: Level::SmFieldTypeRefs,
        world: World::Closed,
        rle: false,
        pre: false,
        full: false,
        steensgaard: false,
    };
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--level" => {
                i += 1;
                opts.level = match args.get(i).map(String::as_str) {
                    Some("typedecl") => Level::TypeDecl,
                    Some("fields") => Level::FieldTypeDecl,
                    Some("merges") => Level::SmFieldTypeRefs,
                    other => {
                        eprintln!("unknown level {other:?}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--world" => {
                i += 1;
                opts.world = match args.get(i).map(String::as_str) {
                    Some("closed") => World::Closed,
                    Some("open") => World::Open,
                    other => {
                        eprintln!("unknown world {other:?}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "-O" => opts.rle = true,
            "--pre" => opts.pre = true,
            "--full" => opts.full = true,
            "--steensgaard" => opts.steensgaard = true,
            other => {
                eprintln!("unknown option `{other}`");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut prog = match ir::compile_to_ir(&source) {
        Ok(p) => p,
        Err(diags) => {
            let map = tbaa_repro::lang::span::LineMap::new(&source);
            eprint!("{}", diags.render(&map));
            return ExitCode::FAILURE;
        }
    };

    if cmd == "check" {
        println!(
            "{}: ok ({} procedures, {} instructions, {} heap reference sites)",
            file,
            prog.funcs.len(),
            prog.instr_count(),
            prog.heap_ref_sites().len()
        );
        return ExitCode::SUCCESS;
    }

    apply_opts(&mut prog, &opts);

    match cmd.as_str() {
        "ir" => print!("{}", pretty::program(&prog)),
        "run" => match run(&prog, &mut NullHook, RunConfig::default()) {
            Ok(out) => {
                println!("{}", out.output);
                eprintln!(
                    "instructions {} | heap loads {} | heap stores {} | \
                         other loads {} | allocs {} ({} cells)",
                    out.counts.instructions,
                    out.counts.heap_loads,
                    out.counts.heap_stores,
                    out.counts.other_loads,
                    out.counts.allocs,
                    out.heap_cells
                );
            }
            Err(e) => {
                eprintln!("runtime error: {e}");
                return ExitCode::FAILURE;
            }
        },
        "sim" => match sim::simulate(&prog, RunConfig::default()) {
            Ok((counts, cache, cycles)) => {
                println!(
                    "cycles {cycles:.0} | instructions {} | loads {} | miss ratio {:.2}%",
                    counts.instructions,
                    counts.heap_loads + counts.other_loads,
                    100.0 * cache.miss_ratio()
                );
            }
            Err(e) => {
                eprintln!("runtime error: {e}");
                return ExitCode::FAILURE;
            }
        },
        "alias" => {
            let analysis: Box<dyn AliasAnalysis + Sync> = if opts.steensgaard {
                Box::new(Steensgaard::build(&prog))
            } else {
                Box::new(Tbaa::build(&prog, opts.level, opts.world))
            };
            println!("heap reference expressions:");
            for (f, ap, is_store) in prog.heap_ref_sites() {
                println!(
                    "  {} {:<24} in {}",
                    if is_store { "store" } else { "load " },
                    pretty::access_path(&prog, ap),
                    prog.func(f).name
                );
            }
            let counts = tbaa_repro::alias::count_alias_pairs(&prog, analysis.as_ref());
            println!(
                "{}: {} references, {} local pairs, {} global pairs",
                analysis.name(),
                counts.references,
                counts.local_pairs,
                counts.global_pairs
            );
        }
        other => {
            eprintln!("unknown command `{other}`");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `tbaac serve` — run the daemon in the foreground (same flags as
/// the standalone `tbaad` binary).
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut config = server::ServerConfig::builder().addr(DEFAULT_ADDR).build();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match args[i].as_str() {
            "--addr" => match value {
                Some(a) => config.addr = a.clone(),
                None => return serve_usage("--addr needs HOST:PORT"),
            },
            "--socket" => match value {
                Some(p) => config.unix_path = Some(p.into()),
                None => return serve_usage("--socket needs PATH"),
            },
            "--workers" => match value.and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => config.workers = n,
                _ => return serve_usage("--workers needs a positive integer"),
            },
            "--capacity" => match value.and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => config.session_capacity = n,
                _ => return serve_usage("--capacity needs a positive integer"),
            },
            "--journal-dir" => match value {
                Some(d) => config.journal_dir = Some(d.into()),
                None => return serve_usage("--journal-dir needs DIR"),
            },
            "--compile-threads" => match value.and_then(|s| s.parse().ok()) {
                Some(n) => config.compile_threads = n,
                None => return serve_usage("--compile-threads needs an integer (0 = auto)"),
            },
            "--prewarm" => match value.and_then(|s| s.parse().ok()) {
                Some(n) => config.prewarm = n,
                None => return serve_usage("--prewarm needs an integer (0 = off)"),
            },
            other => return serve_usage(&format!("unknown option `{other}`")),
        }
        i += 2;
    }
    let srv = match server::Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tbaac serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("tbaad listening on {}", srv.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match srv.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tbaac serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve_usage(msg: &str) -> ExitCode {
    eprintln!("tbaac serve: {msg}");
    eprintln!(
        "usage: tbaac serve [--addr HOST:PORT] [--socket PATH] [--workers N] [--capacity N] \
         [--journal-dir DIR] [--compile-threads N] [--prewarm N]"
    );
    ExitCode::FAILURE
}

/// `tbaac route` — run the session-sharded front tier: one listener,
/// N `tbaad` backends (in-process by default; spawned with
/// `--backend-bin`; external with `--attach`).
fn cmd_route(args: &[String]) -> ExitCode {
    use tbaa_repro::router::{BackendSpec, Router, RouterConfig};

    let mut builder = RouterConfig::builder().addr(DEFAULT_ADDR);
    let mut shards: usize = 2;
    let mut workers: usize = 16;
    let mut capacity: usize = 64;
    let mut backend_bin: Option<std::path::PathBuf> = None;
    let mut attach: Option<Vec<String>> = None;
    let mut journal_dir: Option<std::path::PathBuf> = None;
    let mut compile_threads: usize = 0;
    let mut prewarm: usize = 1;
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match args[i].as_str() {
            "--addr" => match value {
                Some(a) => builder = builder.addr(a.clone()),
                None => return route_usage("--addr needs HOST:PORT"),
            },
            "--socket" => match value {
                Some(p) => builder = builder.unix_path(p),
                None => return route_usage("--socket needs PATH"),
            },
            "--shards" => match value.and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => return route_usage("--shards needs a positive integer"),
            },
            "--workers" => match value.and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => return route_usage("--workers needs a positive integer"),
            },
            "--capacity" => match value.and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => capacity = n,
                _ => return route_usage("--capacity needs a positive integer"),
            },
            "--backend-bin" => match value {
                Some(p) => backend_bin = Some(p.into()),
                None => return route_usage("--backend-bin needs a path to tbaad"),
            },
            "--attach" => match value {
                Some(list) => {
                    attach = Some(list.split(',').map(str::to_string).collect())
                }
                None => return route_usage("--attach needs ADDR[,ADDR...]"),
            },
            "--journal-dir" => match value {
                Some(d) => journal_dir = Some(d.into()),
                None => return route_usage("--journal-dir needs DIR"),
            },
            "--compile-threads" => match value.and_then(|s| s.parse().ok()) {
                Some(n) => compile_threads = n,
                None => return route_usage("--compile-threads needs an integer (0 = auto)"),
            },
            "--prewarm" => match value.and_then(|s| s.parse().ok()) {
                Some(n) => prewarm = n,
                None => return route_usage("--prewarm needs an integer (0 = off)"),
            },
            other => return route_usage(&format!("unknown option `{other}`")),
        }
        i += 2;
    }
    let backend = match (backend_bin, attach) {
        (Some(_), Some(_)) => {
            return route_usage("--backend-bin and --attach are mutually exclusive")
        }
        (Some(bin), None) => BackendSpec::Spawn {
            bin,
            workers,
            capacity,
            journal_dir,
            compile_threads,
            prewarm,
        },
        (None, Some(addrs)) => {
            if journal_dir.is_some() {
                return route_usage("--journal-dir applies to owned backends, not --attach");
            }
            BackendSpec::Attach { addrs }
        }
        (None, None) => {
            let mut config = server::ServerConfig::builder()
                .workers(workers)
                .session_capacity(capacity)
                .compile_threads(compile_threads)
                .prewarm(prewarm)
                .build();
            config.journal_dir = journal_dir;
            BackendSpec::InProcess { config }
        }
    };
    let config = builder.shards(shards).workers(workers).backend(backend).build();
    let router = match Router::bind(config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tbaac route: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("tbaa-router listening on {}", router.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match router.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tbaac route: {e}");
            ExitCode::FAILURE
        }
    }
}

fn route_usage(msg: &str) -> ExitCode {
    eprintln!("tbaac route: {msg}");
    eprintln!(
        "usage: tbaac route [--addr HOST:PORT] [--socket PATH] [--shards N] [--workers N] \
         [--capacity N] [--journal-dir DIR] [--compile-threads N] [--prewarm N] \
         [--backend-bin TBAAD | --attach ADDR[,ADDR...]]"
    );
    ExitCode::FAILURE
}

/// `tbaac query` — one-shot client: load a program into the daemon's
/// session cache (warm across invocations!) and run one verb.
fn cmd_query(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut bench: Option<String> = None;
    let mut file: Option<String> = None;
    let mut scale: u32 = server::proto::DEFAULT_SCALE;
    let mut level: Option<String> = None;
    let mut world: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match args[i].as_str() {
            "--addr" => match value {
                Some(a) => addr = a.clone(),
                None => return query_usage("--addr needs HOST:PORT"),
            },
            "--bench" => match value {
                Some(b) => bench = Some(b.clone()),
                None => return query_usage("--bench needs a program name"),
            },
            "--file" => match value {
                Some(f) => file = Some(f.clone()),
                None => return query_usage("--file needs a path"),
            },
            "--scale" => match value.and_then(|s| s.parse().ok()) {
                Some(n) if (1..=64).contains(&n) => scale = n,
                _ => return query_usage("--scale needs 1..=64"),
            },
            "--level" => match value {
                Some(l) => level = Some(l.clone()),
                None => return query_usage("--level needs a name"),
            },
            "--world" => match value {
                Some(w) => world = Some(w.clone()),
                None => return query_usage("--world needs closed|open"),
            },
            positional => {
                rest.push(positional.to_string());
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    let Some(verb) = rest.first().cloned() else {
        return query_usage("missing verb");
    };

    let mut client = match server::Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tbaac query: cannot reach tbaad at {addr}: {e}");
            eprintln!("hint: start one with `tbaac serve` or `tbaad`");
            return ExitCode::FAILURE;
        }
    };
    let _ = client.set_timeout(Some(std::time::Duration::from_secs(60)));

    if verb == "stats" {
        return match client.stats() {
            Ok(v) => {
                println!("{}", v.raw);
                ExitCode::SUCCESS
            }
            Err(e) => query_fail(&e),
        };
    }

    // Every other verb needs a loaded session.
    let want_paths = verb == "paths";
    let load = match (&bench, &file) {
        (Some(name), None) => client.load_bench_with(name, scale, want_paths),
        (None, Some(path)) => {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("tbaac query: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            client.load_source_with(&source, want_paths)
        }
        _ => return query_usage("need exactly one of --bench NAME or --file F"),
    };
    let load = match load {
        Ok(l) => l,
        Err(e) => return query_fail(&e),
    };

    let level = level.as_deref();
    let world = world.as_deref();
    match verb.as_str() {
        "alias" => {
            let (Some(ap1), Some(ap2)) = (rest.get(1), rest.get(2)) else {
                return query_usage("alias needs two access paths");
            };
            match client.alias(
                &load.session,
                level,
                world,
                &[(ap1.clone(), ap2.clone())],
            ) {
                Ok(reply) => {
                    println!(
                        "{} ~ {}: {}",
                        ap1,
                        ap2,
                        if reply.results[0] { "may alias" } else { "no alias" }
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => query_fail(&e),
            }
        }
        "pairs" => match client.pairs(&load.session, level, world) {
            Ok(p) => {
                println!(
                    "{} references, {} local pairs, {} global pairs",
                    p.references, p.local_pairs, p.global_pairs
                );
                ExitCode::SUCCESS
            }
            Err(e) => query_fail(&e),
        },
        "rle" => match client.rle(&load.session, level, world) {
            Ok(r) => {
                println!(
                    "RLE: hoisted {}, eliminated {}, removed {}",
                    r.hoisted, r.eliminated, r.removed
                );
                ExitCode::SUCCESS
            }
            Err(e) => query_fail(&e),
        },
        "paths" => {
            for p in &load.paths {
                println!("{p}");
            }
            ExitCode::SUCCESS
        }
        other => query_usage(&format!("unknown verb `{other}`")),
    }
}

fn query_fail(e: &server::ClientError) -> ExitCode {
    eprintln!("tbaac query: {e}");
    if let server::ClientError::Server(err) = e {
        for d in &err.diagnostics {
            eprintln!("  [{}..{}] {} error: {}", d.start, d.end, d.phase, d.message);
        }
    }
    ExitCode::FAILURE
}

fn query_usage(msg: &str) -> ExitCode {
    eprintln!("tbaac query: {msg}");
    eprintln!(
        "usage: tbaac query [--addr HOST:PORT] (--bench NAME [--scale N] | --file F.m3) \
         <alias AP1 AP2 | pairs | rle | paths | stats> [--level L] [--world W]"
    );
    ExitCode::FAILURE
}

fn apply_opts(prog: &mut Program, opts: &Opts) {
    if opts.full {
        let report = opt::optimize(prog, &OptOptions::full(opts.level));
        eprintln!(
            "full pipeline: devirtualized {}, inlined {}, RLE removed {}",
            report.devirt.resolved,
            report.inline.inlined,
            report.rle.removed()
        );
        return;
    }
    if opts.pre {
        let (rle, pre) = if opts.steensgaard {
            let a = Steensgaard::build(prog);
            opt::pre::run_rle_with_pre(prog, &a)
        } else {
            let a = Tbaa::build(prog, opts.level, opts.world);
            opt::pre::run_rle_with_pre(prog, &a)
        };
        eprintln!(
            "RLE+PRE: removed {} loads ({} compensating inserts)",
            rle.removed(),
            pre.inserted
        );
        return;
    }
    if opts.rle {
        let stats = if opts.steensgaard {
            let a = Steensgaard::build(prog);
            opt::rle::run_rle(prog, &a)
        } else {
            let a = Tbaa::build(prog, opts.level, opts.world);
            opt::rle::run_rle(prog, &a)
        };
        eprintln!(
            "RLE: hoisted {}, eliminated {}",
            stats.hoisted, stats.eliminated
        );
    }
}
