//! Differential suite for the word-parallel pair census.
//!
//! The census kernel ([`CompiledAliasEngine::dense_census`], surfaced
//! through [`census_alias_pairs_with_threads`]) is a pure performance
//! artifact: its [`AliasPairCounts`] must be *exactly* equal to the
//! scalar upper-triangular walk ([`count_alias_pairs_rows`]) — both
//! when the walk queries the compiled engine and when it queries the
//! naive tree-walking `Tbaa` oracle directly — at every precision
//! level, under both world assumptions, on every benchsuite program.
//!
//! Three angles:
//! 1. the full benchsuite × `Level::ALL` × worlds cross product, with
//!    thread counts 1 and 4 (any worker count must produce identical
//!    sums);
//! 2. seeded-random multi-procedure programs, which stress the
//!    cross-function suffix-multiplicity planes (a path shared by
//!    *k* functions contributes C(k,2) global pairs — a suffix UNION
//!    would undercount them);
//! 3. the lazy regime (`dense_limit` 0) and post-compile interning,
//!    where the census must fall back to the scalar walk and report
//!    itself as a fallback.

use std::sync::Arc;

use tbaa::analysis::{Level, Tbaa};
use tbaa::{
    census_alias_pairs_with_threads, count_alias_pairs_rows, CompiledAliasEngine, World,
};
use tbaa_bench::rng::XorShift64;
use tbaa_benchsuite::suite;
use tbaa_ir::compile_to_ir;
use tbaa_ir::ir::Program;

const SCALE: u32 = 1;
const WORLDS: [World; 2] = [World::Closed, World::Open];

/// Suite × levels × worlds: dense kernel == scalar walk == naive
/// oracle, at 1 and 4 workers, with the dense path actually taken.
#[test]
fn census_matches_scalar_and_naive_across_the_suite() {
    for bench in suite() {
        let prog = bench.compile(SCALE).expect("benchsuite compiles");
        let rows = prog.heap_ref_rows();
        for level in Level::ALL {
            for world in WORLDS {
                let naive = Arc::new(Tbaa::build(&prog, level, world));
                let engine = CompiledAliasEngine::compile(&prog, naive.clone());
                let oracle = count_alias_pairs_rows(&prog, &rows, &*naive, 1);
                let scalar = count_alias_pairs_rows(&prog, &rows, &engine, 1);
                assert_eq!(
                    scalar, oracle,
                    "scalar walk diverged from naive oracle: {} {level:?} {world:?}",
                    bench.name
                );
                for threads in [1, 4] {
                    let report = census_alias_pairs_with_threads(&prog, &engine, threads);
                    assert_eq!(
                        report.counts, oracle,
                        "census diverged: {} {level:?} {world:?} threads {threads}",
                        bench.name
                    );
                    assert_eq!(
                        report.dense_rows,
                        rows.references() as u64,
                        "benchsuite programs are dense-regime; the kernel must run: {}",
                        bench.name
                    );
                    assert_eq!(report.fallback_pairs, 0, "{}", bench.name);
                }
            }
        }
    }
}

/// With `dense_limit` 0 the engine is in the lazy regime: the census
/// must fall back to the scalar walk, say so in its report, and still
/// produce identical counts.
#[test]
fn census_falls_back_in_lazy_regime() {
    let bench = &suite()[0];
    let prog = bench.compile(SCALE).expect("benchsuite compiles");
    let rows = prog.heap_ref_rows();
    let naive = Arc::new(Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed));
    let lazy = CompiledAliasEngine::compile_with_dense_limit(&prog, naive.clone(), 0);
    let report = census_alias_pairs_with_threads(&prog, &lazy, 2);
    let oracle = count_alias_pairs_rows(&prog, &rows, &*naive, 1);
    assert_eq!(report.counts, oracle, "fallback counts diverged: {}", bench.name);
    assert_eq!(report.dense_rows, 0, "lazy regime must not claim dense rows");
    let n = rows.references() as u64;
    assert_eq!(report.fallback_pairs, n * (n - 1) / 2);
}

// ---------------------------------------------------------------------
// Seeded fuzz: random multi-procedure programs. Each procedure reads
// and writes random global fields, so the same access path shows up in
// several functions — the case where the kernel's cross-function
// multiplicity planes earn their keep.
// ---------------------------------------------------------------------

const CASES: u64 = 32;
const SEED: u64 = 0x7baa_ce25;

/// A random well-typed MiniM3 module: a flat forest of object types
/// (each with one INTEGER and one pointer field), pointer globals, and
/// several parameterless procedures touching random global fields.
fn gen_source(rng: &mut XorShift64) -> String {
    let nt = 2 + rng.index(3);
    let ng = 2 + rng.index(3);
    let np = 2 + rng.index(4);
    let targets: Vec<usize> = (0..nt).map(|_| rng.index(nt)).collect();
    let globals: Vec<usize> = (0..ng).map(|_| rng.index(nt)).collect();
    let mut s = String::from("MODULE Cen;\nTYPE\n");
    for (i, &t) in targets.iter().enumerate() {
        s.push_str(&format!("  T{i} = OBJECT v{i}: INTEGER; q{i}: T{t}; END;\n"));
    }
    let body = |rng: &mut XorShift64, pad: &str, out: &mut String| {
        let n = 1 + rng.index(4);
        for _ in 0..n {
            let g = rng.index(ng);
            let t = globals[g];
            match rng.index(4) {
                0 => out.push_str(&format!("{pad}x := x + g{g}.v{t};\n")),
                1 => out.push_str(&format!("{pad}g{g}.v{t} := {};\n", rng.range_i64(0, 9))),
                2 => {
                    // g.q := some global assignable to the field target
                    // (flat hierarchy: exact type match only).
                    if let Some(src) = (0..ng).find(|&j| globals[j] == targets[t]) {
                        out.push_str(&format!("{pad}g{g}.q{t} := g{src};\n"));
                    } else {
                        out.push_str(&format!("{pad}x := x + g{g}.v{t};\n"));
                    }
                }
                _ => out.push_str(&format!("{pad}x := x + g{g}.q{t}.v{};\n", targets[t])),
            }
        }
    };
    let mut procs = String::new();
    for p in 0..np {
        procs.push_str(&format!("PROCEDURE P{p} (): INTEGER =\nBEGIN\n"));
        body(rng, "  ", &mut procs);
        procs.push_str(&format!("  RETURN x;\nEND P{p};\n"));
    }
    s.push_str(&procs);
    s.push_str("VAR\n  x: INTEGER;\n");
    for (i, &t) in globals.iter().enumerate() {
        s.push_str(&format!("  g{i}: T{t};\n"));
    }
    s.push_str("BEGIN\n  x := 0;\n");
    for (i, &t) in globals.iter().enumerate() {
        s.push_str(&format!("  g{i} := NEW(T{t});\n"));
    }
    body(rng, "  ", &mut s);
    for p in 0..np {
        s.push_str(&format!("  x := P{p}();\n"));
    }
    s.push_str("  PRINTI(x);\nEND Cen.\n");
    s
}

fn compile(src: &str) -> Program {
    compile_to_ir(src).unwrap_or_else(|e| panic!("generated program must compile:\n{src}\n{e}"))
}

#[test]
fn census_matches_scalar_on_random_multi_procedure_programs() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(SEED.wrapping_add(case));
        let src = gen_source(&mut rng);
        let prog = compile(&src);
        let rows = prog.heap_ref_rows();
        for level in Level::ALL {
            for world in WORLDS {
                let naive = Arc::new(Tbaa::build(&prog, level, world));
                let oracle = count_alias_pairs_rows(&prog, &rows, &*naive, 1);
                for dense_limit in [tbaa::DENSE_LIMIT, 0] {
                    let engine = CompiledAliasEngine::compile_with_dense_limit(
                        &prog,
                        naive.clone(),
                        dense_limit,
                    );
                    let report = census_alias_pairs_with_threads(&prog, &engine, 2);
                    assert_eq!(
                        report.counts, oracle,
                        "census diverged on seed {case}: {level:?} {world:?} limit \
                         {dense_limit}\n{src}",
                    );
                    if dense_limit == 0 {
                        assert_eq!(report.dense_rows, 0, "seed {case} must fall back");
                    } else {
                        assert_eq!(
                            report.dense_rows,
                            rows.references() as u64,
                            "seed {case} must use the dense kernel"
                        );
                    }
                }
            }
        }
    }
}
