//! The parallel evaluation engine must be an invisible optimization:
//! whatever the worker count, the rendered tables are byte-identical to
//! the single-threaded reference, and the memo caches guarantee each
//! benchmark is compiled exactly once.

use std::sync::Arc;

use tbaa_bench::{render_table5, render_table6, Engine};
use tbaa_repro::alias::{Level, World};
use tbaa_repro::benchsuite::{suite, Benchmark};

const SCALE: u32 = 1;

/// Rendered Table 5 and Table 6 from a parallel engine match the
/// single-threaded engine byte for byte.
#[test]
fn parallel_tables_match_serial_byte_for_byte() {
    let serial = Engine::with_threads(SCALE, 1);
    let parallel = Engine::with_threads(SCALE, 8);
    assert_eq!(
        render_table5(&serial.table5()),
        render_table5(&parallel.table5()),
        "Table 5 must not depend on the schedule"
    );
    assert_eq!(
        render_table6(&serial.table6()),
        render_table6(&parallel.table6()),
        "Table 6 must not depend on the schedule"
    );
}

/// A multi-table run on many threads still compiles each benchmark
/// exactly once: the per-key slots in the memo cache are exactly-once
/// even under contention.
#[test]
fn engine_compiles_each_program_exactly_once() {
    let engine = Engine::with_threads(SCALE, 8);
    engine.table5();
    engine.table6();
    engine.fig8();
    assert_eq!(
        engine.compile_count(),
        suite().len(),
        "every table re-uses the shared compiles"
    );
}

/// The memo cache hands out the same `Arc` on repeated lookups — the
/// analysis is shared, not rebuilt.
#[test]
fn memo_cache_returns_the_same_arc()
{
    let engine = Engine::with_threads(SCALE, 4);
    let b = Benchmark::by_name("ktree").expect("suite has ktree");
    let first = engine.analysis(b, Level::SmFieldTypeRefs, World::Closed);
    let again = engine.analysis(b, Level::SmFieldTypeRefs, World::Closed);
    assert!(
        Arc::ptr_eq(&first, &again),
        "second lookup must be the cached analysis"
    );
    let prog = engine.program(b);
    assert!(Arc::ptr_eq(&prog, &engine.program(b)));
}
