//! Incremental-compilation differential: the function-granular cache in
//! `tbaa-incr` must be *invisible* in the daemon's output.
//!
//! Three proofs, in the counter-walk style of the server's `lru_churn`
//! suite (one sequential connection → fully deterministic counters):
//!
//! * **Byte identity across an edit corpus** — a seeded sequence of
//!   superseding program versions (mostly single-function edits, with
//!   whole-program rewrites mixed in) is loaded and queried at every
//!   analysis level and world assumption; every `alias`/`pairs`/`rle`
//!   reply must match the from-scratch `Pipeline` oracle byte-for-byte,
//!   and the `incr.*` counters must account for every unit walked.
//! * **Exact `n−1` reuse** — a superseding load that differs from its
//!   predecessor in exactly one function replays every other unit from
//!   cache: `incr.func_hits` advances by exactly `n−1` and
//!   `incr.func_misses` by exactly 1.
//! * **Eviction + reload is an all-hit rebuild** — the unit cache lives
//!   on the *store*, not the session, so recompiling a session the
//!   capacity-1 LRU evicted replays every unit from cache while still
//!   producing byte-exact replies.

use tbaa::analysis::Level;
use tbaa::World;
use tbaa_bench::load::{
    mutate_contents, CheckOutcome, Content, DiffChecker, LineSource, ReqKind, Wire, MUTATE_PROCS,
};
use tbaa_incr::IncrCompiler;
use tbaa_server::json::{parse, Value};
use tbaa_server::{Server, ServerConfig};

fn counter(stats: &Value, name: &str) -> i64 {
    stats
        .get("stats")
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Value::as_i64)
        .unwrap_or(0)
}

struct Driver {
    writer: Wire,
    src: LineSource,
}

impl Driver {
    fn connect(addr: std::net::SocketAddr) -> Driver {
        let wire = Wire::connect_tcp(addr).expect("connect");
        let writer = wire.try_clone().expect("clone");
        Driver {
            writer,
            src: LineSource::new(wire),
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_line(line).expect("send");
        self.src.read_line_blocking().expect("reply")
    }

    fn stats(&mut self) -> Value<'static> {
        let raw = self.request(r#"{"op":"stats"}"#);
        parse(&raw).expect("stats parses").into_owned()
    }

    /// Loads a content, byte-checks the reply, returns `(sid, cached)`.
    fn load(&mut self, content: &Content, checker: &DiffChecker) -> (String, bool) {
        let raw = self.request(&content.load_line());
        let kind = ReqKind::Load {
            key: content.key(),
        };
        let CheckOutcome::Loaded { sid } = checker.check(&kind, &raw) else {
            panic!("load failed: {raw}");
        };
        let cached = parse(&raw)
            .unwrap()
            .get("cached")
            .and_then(Value::as_bool)
            .unwrap();
        (sid, cached)
    }
}

const LEVELS: [(&str, Level); 3] = [
    ("typedecl", Level::TypeDecl),
    ("fields", Level::FieldTypeDecl),
    ("merges", Level::SmFieldTypeRefs),
];
const WORLDS: [(&str, World); 2] = [("closed", World::Closed), ("open", World::Open)];

/// Fires `alias`, `pairs`, and `rle` for every level × world against a
/// session and byte-checks each reply against the oracle.
fn sweep_queries(d: &mut Driver, checker: &DiffChecker, content: &Content, sid: &str) {
    let key = content.key();
    let paths = checker.oracle().paths(&key);
    let pairs = vec![
        (paths[0].clone(), paths[paths.len() / 2].clone()),
        (paths.last().unwrap().clone(), paths[0].clone()),
    ];
    for (level_str, level) in LEVELS {
        for (world_str, world) in WORLDS {
            let alias = format!(
                r#"{{"op":"alias","session":"{sid}","level":"{level_str}","world":"{world_str}","pairs":[["{}","{}"],["{}","{}"]]}}"#,
                pairs[0].0, pairs[0].1, pairs[1].0, pairs[1].1
            );
            let raw = d.request(&alias);
            let kind = ReqKind::Alias {
                key: key.clone(),
                sid: sid.to_string(),
                level,
                world,
                pairs: pairs.clone(),
            };
            assert!(
                matches!(checker.check(&kind, &raw), CheckOutcome::Ok),
                "alias diverged at {level_str}/{world_str}:\n{}",
                checker.details().join("\n")
            );
            for op in ["pairs", "rle"] {
                let line = format!(
                    r#"{{"op":"{op}","session":"{sid}","level":"{level_str}","world":"{world_str}"}}"#
                );
                let raw = d.request(&line);
                let kind = match op {
                    "pairs" => ReqKind::Pairs {
                        key: key.clone(),
                        sid: sid.to_string(),
                        level,
                        world,
                    },
                    _ => ReqKind::Rle {
                        key: key.clone(),
                        sid: sid.to_string(),
                        level,
                        world,
                    },
                };
                assert!(
                    matches!(checker.check(&kind, &raw), CheckOutcome::Ok),
                    "{op} diverged at {level_str}/{world_str}:\n{}",
                    checker.details().join("\n")
                );
            }
        }
    }
}

/// The seeded edit corpus, loaded version by version: every reply at
/// every level/world must be byte-identical to the from-scratch oracle,
/// and the incremental counters must account for every unit exactly.
#[test]
fn edit_corpus_is_byte_identical_at_every_level_and_world() {
    const VERSIONS: usize = 6;
    let contents = mutate_contents(11, VERSIONS);
    let checker = DiffChecker::new(&contents);

    let handle = Server::bind(ServerConfig::builder().build())
        .expect("bind")
        .spawn();
    let mut d = Driver::connect(handle.addr());

    for content in &contents {
        let (sid, cached) = d.load(content, &checker);
        assert!(!cached, "every version is new content, so it compiles");
        sweep_queries(&mut d, &checker, content, &sid);
    }

    // Unit conservation: each of the `VERSIONS` compiles walked all
    // `MUTATE_PROCS + 1` units (the module body is one more unit), and
    // every walk classified each unit as exactly one of hit or miss.
    let s = d.stats();
    let hits = counter(&s, "incr.func_hits");
    let misses = counter(&s, "incr.func_misses");
    let units = (MUTATE_PROCS + 1) as i64;
    assert_eq!(
        hits + misses,
        VERSIONS as i64 * units,
        "every unit of every version classified"
    );
    assert!(hits > 0, "superseding versions reuse cached units");
    assert!(
        misses >= units,
        "the cold first version misses all {units} units"
    );
    assert_eq!(checker.mismatches(), 0, "{:?}", checker.details());

    handle.state().request_shutdown();
    handle.join().expect("clean shutdown");
}

/// The base program for the exact counter-walk: 3 procedures + the
/// module body = 4 units, with heap references so every query verb has
/// paths to chew on.
const WALK_BASE: &str = "MODULE Walk;

TYPE
  Box = OBJECT
    val: INTEGER;
    next: Box;
  END;

VAR
  head: Box;
  total: INTEGER;

PROCEDURE Mk (v: INTEGER): Box =
VAR b: Box;
BEGIN
  b := NEW(Box);
  b.val := v + 1;
  b.next := head;
  RETURN b;
END Mk;

PROCEDURE Grow (n: INTEGER) =
BEGIN
  FOR i := 1 TO n DO
    head := Mk(i);
  END;
END Grow;

PROCEDURE Tally (): INTEGER =
VAR b: Box; s: INTEGER;
BEGIN
  s := 0;
  b := head;
  WHILE b # NIL DO
    s := s + b.val;
    b := b.next;
  END;
  RETURN s;
END Tally;

BEGIN
  head := NIL;
  Grow(8);
  total := Tally();
END Walk.
";

/// Units in [`WALK_BASE`]: three procedures plus the module body.
const WALK_UNITS: i64 = 4;

/// A superseding load differing in exactly one function advances
/// `incr.func_hits` by exactly `n−1` and `incr.func_misses` by exactly
/// 1 — and a session the capacity-1 LRU evicted rebuilds as an all-hit
/// replay, because the unit cache belongs to the store, not the session.
#[test]
fn one_function_edit_reuses_n_minus_1_and_eviction_reload_is_all_hit() {
    let base = Content::Source {
        text: WALK_BASE.to_string(),
    };
    let edited = Content::Source {
        // A constant-only edit to `Mk`: the unit's text changes but its
        // effect summary does not, so every downstream context is intact.
        text: WALK_BASE.replace("b.val := v + 1;", "b.val := v + 2;"),
    };
    assert_ne!(base.key(), edited.key(), "the edit must change the content");
    let contents = vec![base.clone(), edited.clone()];
    let checker = DiffChecker::new(&contents);

    let handle = Server::bind(ServerConfig::builder().session_capacity(1).build())
        .expect("bind")
        .spawn();
    let mut d = Driver::connect(handle.addr());

    // Cold load: every unit misses.
    let (sid_base, cached) = d.load(&base, &checker);
    assert!(!cached);
    let s = d.stats();
    assert_eq!(counter(&s, "incr.func_hits"), 0, "cold compile has no hits");
    assert_eq!(counter(&s, "incr.func_misses"), WALK_UNITS);
    sweep_queries(&mut d, &checker, &base, &sid_base);

    // Superseding load of the one-function edit (evicts the base session
    // at capacity 1): exactly n−1 hits, exactly 1 miss.
    let (sid_edit, cached) = d.load(&edited, &checker);
    assert!(!cached, "new content compiles");
    let s = d.stats();
    assert_eq!(
        counter(&s, "incr.func_hits"),
        WALK_UNITS - 1,
        "a one-function edit replays every other unit"
    );
    assert_eq!(
        counter(&s, "incr.func_misses"),
        WALK_UNITS + 1,
        "only the edited unit re-lowers"
    );
    assert_eq!(counter(&s, "sessions.evictions"), 1, "capacity-1 store");
    sweep_queries(&mut d, &checker, &edited, &sid_edit);

    // Reload the evicted base: the *session* is gone (fresh id, a real
    // recompile), but every one of its units is still in the store-level
    // cache — the rebuild is an all-hit replay.
    let (sid_base2, cached) = d.load(&base, &checker);
    assert!(!cached, "evicted session must recompile, not hit");
    assert_ne!(sid_base2, sid_base, "recompiled session gets a fresh id");
    let s = d.stats();
    assert_eq!(
        counter(&s, "incr.func_hits"),
        (WALK_UNITS - 1) + WALK_UNITS,
        "eviction+reload replays all {WALK_UNITS} units from cache"
    );
    assert_eq!(
        counter(&s, "incr.func_misses"),
        WALK_UNITS + 1,
        "no new lowering work on reload"
    );
    assert_eq!(counter(&s, "sessions.compiles"), 3);
    sweep_queries(&mut d, &checker, &base, &sid_base2);

    assert_eq!(checker.mismatches(), 0, "{:?}", checker.details());

    handle.state().request_shutdown();
    handle.join().expect("clean shutdown");
}

/// Library-level spot check riding the same corpus: the incremental
/// compiler's output must be *identical* (pretty-printed IR fingerprint)
/// to a from-scratch lowering for every seeded version — hits or not.
#[test]
fn incremental_programs_fingerprint_identical_to_fresh() {
    for seed in [3u64, 11, 42] {
        let incr = IncrCompiler::new();
        for content in mutate_contents(seed, 8) {
            let source = content.source().expect("mutate source resolves");
            let (program, _report) = incr.compile(&source);
            let program = program.expect("mutate version compiles");
            let fresh = tbaa_ir::compile_to_ir(&source).expect("fresh compile");
            assert_eq!(
                tbaa_ir::pretty::program(&program),
                tbaa_ir::pretty::program(&fresh),
                "seed {seed}: incremental output diverged from fresh"
            );
        }
    }
}
