//! Differential soak for the `tbaa-router` front tier: a sharded
//! deployment must be byte-identical to the in-process `Pipeline`
//! oracle — the same property `tests/server_differential.rs` proves for
//! a single daemon, now through consistent hashing, session-id
//! rewriting, connection pooling, and pipelined proxying.
//!
//! The second test kills one backend mid-traffic and requires the
//! router to recover transparently: respawn the shard, re-`load` its
//! sessions from the content journal, and keep answering with the same
//! router-minted session ids — still byte-identical, zero divergences.

use std::sync::{Arc, Barrier};

use tbaa_bench::load::{CheckOutcome, Content, DiffChecker, LineSource, ReqKind, Wire, WorkloadGen};
use tbaa_repro::router::{BackendSpec, Router, RouterConfig, RouterHandle};
use tbaa_server::ServerConfig;

const CLIENTS: usize = 8;
const REQS_PER_CLIENT: usize = 100;

fn spawn_router(shards: usize) -> RouterHandle {
    let config = RouterConfig::builder()
        .addr("127.0.0.1:0")
        .shards(shards)
        .io_timeout(std::time::Duration::from_secs(30))
        .backend(BackendSpec::InProcess {
            config: ServerConfig::default(),
        })
        .build();
    Router::bind(config).expect("bind router").spawn()
}

#[test]
fn eight_clients_through_three_shard_router_byte_identical() {
    let contents: Arc<Vec<Content>> = Arc::new(vec![
        Content::Bench {
            name: "ktree".into(),
            scale: 1,
        },
        Content::Bench {
            name: "slisp".into(),
            scale: 1,
        },
        Content::Bench {
            name: "format".into(),
            scale: 1,
        },
    ]);
    let checker = Arc::new(DiffChecker::new(&contents));
    let handle = spawn_router(3);
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let checker = checker.clone();
            let contents = contents.clone();
            scope.spawn(move || {
                let wire = Wire::connect_tcp(addr).expect("connect");
                let mut writer = wire.try_clone().expect("clone socket");
                let mut src = LineSource::new(wire);
                let mut gen = WorkloadGen::new(0x5AAD + c as u64, contents);
                for _ in 0..REQS_PER_CLIENT {
                    let req = gen.next(checker.oracle());
                    writer.write_line(&req.line).expect("send");
                    let raw = src.read_line_blocking().expect("reply");
                    match checker.check(&req.kind, &raw) {
                        CheckOutcome::Loaded { sid } => {
                            if let ReqKind::Load { key } = &req.kind {
                                gen.observe_load(key, &sid);
                            }
                        }
                        CheckOutcome::Ok | CheckOutcome::Mismatch => {}
                    }
                }
            });
        }
    });

    assert_eq!(
        checker.mismatches(),
        0,
        "router diverged from the Pipeline oracle:\n{}",
        checker.details().join("\n")
    );
    assert_eq!(checker.checked(), (CLIENTS * REQS_PER_CLIENT) as u64);
    assert_eq!(handle.state().respawns(), 0, "no backend died in this test");

    handle.state().request_shutdown();
    handle.join().expect("router exits cleanly");
}

/// Kill one backend mid-traffic: the router must respawn it, replay the
/// journal, and keep every reply byte-identical under the *same*
/// router session ids. Zero divergences, ≥ 1 respawn.
#[test]
fn survives_backend_kill_with_respawn_and_journal_reload() {
    let contents: Arc<Vec<Content>> = Arc::new(vec![
        Content::Bench {
            name: "ktree".into(),
            scale: 1,
        },
        Content::Bench {
            name: "format".into(),
            scale: 1,
        },
    ]);
    let checker = Arc::new(DiffChecker::new(&contents));
    let handle = spawn_router(3);
    let addr = handle.addr();
    let state = handle.state().clone();

    // Preload every content so the journal has something to replay, and
    // record the router-minted session ids clients will keep using.
    let sids: Vec<String> = {
        let wire = Wire::connect_tcp(addr).expect("connect");
        let mut writer = wire.try_clone().expect("clone socket");
        let mut src = LineSource::new(wire);
        contents
            .iter()
            .map(|content| {
                writer.write_line(&content.load_line()).expect("send load");
                let raw = src.read_line_blocking().expect("load reply");
                let kind = ReqKind::Load {
                    key: content.key(),
                };
                let CheckOutcome::Loaded { sid } = checker.check(&kind, &raw) else {
                    panic!("preload failed: {raw}");
                };
                sid
            })
            .collect()
    };

    // The shard that owns the first content is the one we will murder.
    let victim = state.shard_of(&contents[0].key().display());

    const KILLER_CLIENTS: usize = 4;
    const ROUNDS: usize = 30;
    // Everyone rendezvouses after round 5, the killer strikes while the
    // clients hold at a second rendezvous, and only once the backend is
    // fully dead (`kill_backend` joins the drained server) do the
    // remaining 25 rounds flow. Without the second barrier the kill
    // races the clients: fast rounds can all complete inside the drain
    // grace window and the router never observes the death.
    let barrier = Arc::new(Barrier::new(KILLER_CLIENTS + 1));

    std::thread::scope(|scope| {
        {
            let barrier = barrier.clone();
            let state = state.clone();
            scope.spawn(move || {
                barrier.wait();
                state.kill_backend(victim);
                barrier.wait();
            });
        }
        for c in 0..KILLER_CLIENTS {
            let checker = checker.clone();
            let contents = contents.clone();
            let sids = sids.clone();
            let barrier = barrier.clone();
            scope.spawn(move || {
                let wire = Wire::connect_tcp(addr).expect("connect");
                let mut writer = wire.try_clone().expect("clone socket");
                let mut src = LineSource::new(wire);
                let mut rng = tbaa_bench::rng::XorShift64::new(0xDEAD + c as u64);
                for round in 0..ROUNDS {
                    if round == 5 {
                        barrier.wait(); // killer is about to strike
                        barrier.wait(); // backend is confirmed dead
                    }
                    let which = (round + c) % contents.len();
                    let content = &contents[which];
                    let key = content.key();
                    let sid = sids[which].clone();
                    let paths = checker.oracle().paths(&key);
                    let pairs = vec![(rng.pick(&paths).clone(), rng.pick(&paths).clone())];
                    let line = format!(
                        r#"{{"op":"alias","session":"{sid}","level":"merges","world":"closed","pairs":[["{}","{}"]]}}"#,
                        pairs[0].0, pairs[0].1
                    );
                    writer.write_line(&line).expect("send alias");
                    let raw = src.read_line_blocking().expect("alias reply");
                    let kind = ReqKind::Alias {
                        key: key.clone(),
                        sid,
                        level: tbaa::Level::SmFieldTypeRefs,
                        world: tbaa::World::Closed,
                        pairs,
                    };
                    assert!(
                        matches!(checker.check(&kind, &raw), CheckOutcome::Ok),
                        "reply diverged across backend death:\n{}",
                        checker.details().join("\n")
                    );
                }
            });
        }
    });

    assert_eq!(
        checker.mismatches(),
        0,
        "router diverged during recovery:\n{}",
        checker.details().join("\n")
    );
    assert!(
        state.respawns() >= 1,
        "the killed backend must have been respawned"
    );
    // Journal-less backends cannot self-recover, so every recovery here
    // went through the router's in-memory journal replay.
    let m = state.metrics();
    assert!(
        m.counter("router.recoveries.replayed").get() >= 1,
        "a journal-less respawn recovers via router-side replay"
    );
    assert_eq!(
        m.counter("router.recoveries.attached").get(),
        0,
        "nothing to attach to without a durable backend journal"
    );
    assert!(
        m.counter("router.journal_loads_replayed").get() >= 1,
        "the replay re-sent the victim shard's loads"
    );

    handle.state().request_shutdown();
    handle.join().expect("router exits cleanly");
}

/// A scratch journal directory, wiped on creation and on drop.
struct JournalDir(std::path::PathBuf);

impl JournalDir {
    fn new(tag: &str) -> JournalDir {
        let dir = std::env::temp_dir().join(format!("tbaa-rtr-jrn-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        JournalDir(dir)
    }
}

impl Drop for JournalDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The journal-enabled kill variant — the recovery *seam*: when the
/// respawned backend self-recovers from its own durable journal, the
/// router must attach to it instead of re-sending its in-memory journal,
/// and must not double-count the backend's replayed loads as its own.
/// Same gates as above otherwise: zero divergences, same session ids.
#[test]
fn journaled_backend_self_recovers_and_router_attaches_without_replay() {
    let dir = JournalDir::new("kill");
    let contents: Arc<Vec<Content>> = Arc::new(vec![
        Content::Bench {
            name: "ktree".into(),
            scale: 1,
        },
        Content::Bench {
            name: "format".into(),
            scale: 1,
        },
    ]);
    let checker = Arc::new(DiffChecker::new(&contents));
    let config = RouterConfig::builder()
        .addr("127.0.0.1:0")
        .shards(3)
        .io_timeout(std::time::Duration::from_secs(30))
        .backend(BackendSpec::InProcess {
            config: ServerConfig::builder().journal_dir(&dir.0).build(),
        })
        .build();
    let handle = Router::bind(config).expect("bind router").spawn();
    let addr = handle.addr();
    let state = handle.state().clone();

    // Preload and remember the router-minted session ids.
    let sids: Vec<String> = {
        let wire = Wire::connect_tcp(addr).expect("connect");
        let mut writer = wire.try_clone().expect("clone socket");
        let mut src = LineSource::new(wire);
        contents
            .iter()
            .map(|content| {
                writer.write_line(&content.load_line()).expect("send load");
                let raw = src.read_line_blocking().expect("load reply");
                let kind = ReqKind::Load {
                    key: content.key(),
                };
                let CheckOutcome::Loaded { sid } = checker.check(&kind, &raw) else {
                    panic!("preload failed: {raw}");
                };
                sid
            })
            .collect()
    };

    let victim = state.shard_of(&contents[0].key().display());
    const KILLER_CLIENTS: usize = 4;
    const ROUNDS: usize = 30;
    let barrier = Arc::new(Barrier::new(KILLER_CLIENTS + 1));

    std::thread::scope(|scope| {
        {
            let barrier = barrier.clone();
            let state = state.clone();
            scope.spawn(move || {
                barrier.wait();
                state.kill_backend(victim);
                barrier.wait();
            });
        }
        for c in 0..KILLER_CLIENTS {
            let checker = checker.clone();
            let contents = contents.clone();
            let sids = sids.clone();
            let barrier = barrier.clone();
            scope.spawn(move || {
                let wire = Wire::connect_tcp(addr).expect("connect");
                let mut writer = wire.try_clone().expect("clone socket");
                let mut src = LineSource::new(wire);
                let mut rng = tbaa_bench::rng::XorShift64::new(0xBEEF + c as u64);
                for round in 0..ROUNDS {
                    if round == 5 {
                        barrier.wait(); // killer is about to strike
                        barrier.wait(); // backend is confirmed dead
                    }
                    let which = (round + c) % contents.len();
                    let content = &contents[which];
                    let key = content.key();
                    let sid = sids[which].clone();
                    let paths = checker.oracle().paths(&key);
                    let pairs = vec![(rng.pick(&paths).clone(), rng.pick(&paths).clone())];
                    let line = format!(
                        r#"{{"op":"alias","session":"{sid}","level":"merges","world":"closed","pairs":[["{}","{}"]]}}"#,
                        pairs[0].0, pairs[0].1
                    );
                    writer.write_line(&line).expect("send alias");
                    let raw = src.read_line_blocking().expect("alias reply");
                    let kind = ReqKind::Alias {
                        key: key.clone(),
                        sid,
                        level: tbaa::Level::SmFieldTypeRefs,
                        world: tbaa::World::Closed,
                        pairs,
                    };
                    assert!(
                        matches!(checker.check(&kind, &raw), CheckOutcome::Ok),
                        "reply diverged across backend death:\n{}",
                        checker.details().join("\n")
                    );
                }
            });
        }
    });

    assert_eq!(
        checker.mismatches(),
        0,
        "router diverged during journaled recovery:\n{}",
        checker.details().join("\n")
    );
    assert!(state.respawns() >= 1, "the killed backend respawned");
    let m = state.metrics();
    assert!(
        m.counter("router.recoveries.attached").get() >= 1,
        "a self-recovered backend must be attached to, not replayed at"
    );
    assert_eq!(
        m.counter("router.recoveries.replayed").get(),
        0,
        "the durable journal made router-side replay unnecessary"
    );
    assert_eq!(
        m.counter("router.journal_loads_replayed").get(),
        0,
        "the backend's own replayed loads must not be double-counted \
         as router retries"
    );

    handle.state().request_shutdown();
    handle.join().expect("router exits cleanly");
}
