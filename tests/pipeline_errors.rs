//! Error-path coverage for the [`tbaa_repro::Pipeline`] facade and its
//! wire-protocol twin: malformed MiniM3 must surface *structured*
//! diagnostics — never a panic — both in-process through
//! `Pipeline::run` and over the `tbaad` protocol, and the two must
//! carry the same phase/span/message data.

use tbaa_repro::server::{Client, ClientError, ErrCode, Server, ServerConfig};
use tbaa_repro::Pipeline;

/// (label, source, phase expected in at least one diagnostic)
const BROKEN: &[(&str, &str, &str)] = &[
    ("lex", "MODULE M; VAR x: INTEGER; BEGIN x := 1 ? 2; END M.", "lex"),
    ("parse", "MODULE Broken", "parse"),
    (
        "check",
        "MODULE M; VAR x: INTEGER; BEGIN x := nonexistent; END M.",
        "check",
    ),
    (
        "check-type",
        "MODULE M; TYPE T = OBJECT f: INTEGER; END; VAR x: INTEGER; \
         BEGIN x := NEW(T); END M.",
        "check",
    ),
];

#[test]
fn pipeline_run_surfaces_structured_diagnostics() {
    for (label, source, want_phase) in BROKEN {
        let diags = match Pipeline::new(source).run() {
            Err(d) => d,
            Ok(_) => panic!("`{label}` source must not compile"),
        };
        assert!(diags.has_errors(), "{label}: diagnostics non-empty");
        let mut phases = Vec::new();
        for d in diags.iter() {
            phases.push(d.phase.to_string());
            assert!(
                (d.span.end as usize) <= source.len() && d.span.start <= d.span.end,
                "{label}: span {}..{} inside the {}-byte source",
                d.span.start,
                d.span.end,
                source.len()
            );
            assert!(!d.message.is_empty(), "{label}: message non-empty");
        }
        assert!(
            phases.iter().any(|p| p == want_phase),
            "{label}: expected a `{want_phase}` diagnostic, got {phases:?}"
        );
    }
}

/// The wire protocol carries exactly the diagnostics `Pipeline::run`
/// produces in-process — same phases, spans, and messages, in order.
#[test]
fn wire_diagnostics_match_in_process_diagnostics() {
    let handle = Server::bind(ServerConfig::default()).expect("bind").spawn();
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();

    for (label, source, _phase) in BROKEN {
        let local = match Pipeline::new(source).run() {
            Err(d) => d,
            Ok(_) => panic!("`{label}` source must not compile"),
        };
        let wire = match client.load_source(source) {
            Err(ClientError::Server(err)) => {
                assert_eq!(err.code, ErrCode::Compile, "{label}");
                err.diagnostics
            }
            other => panic!("{label}: expected a compile error over the wire: {other:?}"),
        };
        assert_eq!(wire.len(), local.len(), "{label}: same diagnostic count");
        for (w, l) in wire.iter().zip(local.iter()) {
            assert_eq!(w.phase, l.phase.to_string(), "{label}");
            assert_eq!(w.start, l.span.start as i64, "{label}");
            assert_eq!(w.end, l.span.end as i64, "{label}");
            assert_eq!(w.message, l.message, "{label}");
        }
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// `Pipeline::run` with optimization requested still fails cleanly on
/// bad source (the optimizer never sees a broken program).
#[test]
fn optimizing_pipeline_fails_cleanly_on_bad_source() {
    let result = Pipeline::new("MODULE Broken")
        .level(tbaa_repro::alias::Level::TypeDecl)
        .world(tbaa_repro::alias::World::Open)
        .optimize(tbaa_repro::opt::OptOptions::builder().rle(true).build())
        .run();
    assert!(result.is_err());
}
