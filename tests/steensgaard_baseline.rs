//! The §5 related-work comparison: an instruction-based Steensgaard
//! points-to analysis vs TBAA, as RLE drivers and on static precision.

use tbaa_repro::alias::{AliasAnalysis, Level, Steensgaard, Tbaa, World};
use tbaa_repro::benchsuite::suite;
use tbaa_repro::opt::rle::run_rle;
use tbaa_repro::sim::interp::{run, NullHook, RunConfig};

/// RLE driven by Steensgaard preserves every benchmark's semantics —
/// i.e. our Steensgaard is a *sound* may-alias analysis for MiniM3.
#[test]
fn steensgaard_rle_preserves_every_benchmark() {
    for b in suite().iter().filter(|b| !b.interactive) {
        let base = b.compile(1).unwrap();
        let base_out = run(&base, &mut NullHook, RunConfig::default()).unwrap();
        let mut opt = b.compile(1).unwrap();
        let st = Steensgaard::build(&opt);
        let stats = run_rle(&mut opt, &st);
        let out = run(&opt, &mut NullHook, RunConfig::default())
            .unwrap_or_else(|e| panic!("{} trapped under Steensgaard RLE: {e}", b.name));
        assert_eq!(base_out.output, out.output, "{} ({stats:?})", b.name);
        assert!(out.counts.heap_loads <= base_out.counts.heap_loads);
    }
}

/// The trade-off the paper's §5 describes: Steensgaard separates
/// structurally disjoint data TypeDecl conflates, while FieldTypeDecl
/// distinguishes fields Steensgaard conflates. Neither dominates.
#[test]
fn steensgaard_and_tbaa_are_incomparable() {
    let prog = tbaa_repro::ir::compile_to_ir(
        "MODULE M;
         TYPE T = OBJECT f, g: INTEGER; n: T; END;
         VAR a, b: T; x: INTEGER;
         BEGIN
           a := NEW(T); b := NEW(T);
           a.f := 1; a.g := 2; b.f := 3;
           x := a.f + a.g + b.f;
         END M.",
    )
    .unwrap();
    let st = Steensgaard::build(&prog);
    let ftd = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
    let find = |name: &str| {
        prog.aps
            .iter()
            .find(|(id, _)| tbaa_repro::ir::pretty::access_path(&prog, *id) == name)
            .map(|(id, _)| id)
            .unwrap()
    };
    let af = find("a.f");
    let ag = find("a.g");
    let bf = find("b.f");
    // Steensgaard wins on disjoint structures...
    assert!(!st.may_alias(&prog.aps, af, bf));
    assert!(ftd.may_alias(&prog.aps, af, bf));
    // ...FieldTypeDecl wins on fields.
    assert!(st.may_alias(&prog.aps, af, ag));
    assert!(!ftd.may_alias(&prog.aps, af, ag));
}

/// Aggregate static comparison over the suite. The empirical result —
/// which supports the paper's thesis that *programming-language* types
/// buy precision — is that field-insensitive unification ends up coarser
/// than even TypeDecl in total on these object-oriented programs
/// (unification cascades across procedures; all fields of a blob
/// conflate), while FieldTypeDecl beats both by a wide margin.
#[test]
fn fieldtypedecl_beats_steensgaard_on_oo_code() {
    let mut td_total = 0usize;
    let mut st_total = 0usize;
    let mut ftd_total = 0usize;
    for b in suite() {
        let prog = b.compile(1).unwrap();
        let td = Tbaa::build(&prog, Level::TypeDecl, World::Closed);
        let ftd = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
        let st = Steensgaard::build(&prog);
        td_total += tbaa_repro::alias::count_alias_pairs(&prog, &td).global_pairs;
        ftd_total += tbaa_repro::alias::count_alias_pairs(&prog, &ftd).global_pairs;
        st_total += tbaa_repro::alias::count_alias_pairs(&prog, &st).global_pairs;
    }
    assert!(
        ftd_total * 2 < st_total,
        "FieldTypeDecl ({ftd_total}) is far more precise than \
         field-insensitive Steensgaard ({st_total})"
    );
    assert!(ftd_total < td_total, "and than TypeDecl ({td_total})");
    // Record the observed ordering so a regression in either analysis is
    // visible: Steensgaard lands in the same order of magnitude as
    // TypeDecl on this suite.
    assert!(
        st_total < td_total * 4,
        "Steensgaard ({st_total}) stays within 4x of TypeDecl ({td_total})"
    );
}
