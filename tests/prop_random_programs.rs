//! Property-based tests over *randomly generated, type-correct MiniM3
//! programs*: the alias analyses must satisfy their algebraic properties
//! and — most importantly — RLE and the full optimization pipeline must
//! preserve program semantics on every generated program.
//!
//! Generation runs on the workspace's own deterministic
//! [`tbaa_bench::rng::XorShift64`] (fixed seeds, so failures reproduce
//! exactly) instead of the `proptest` crate, which the offline build
//! cannot fetch.
#![cfg(feature = "proptest-tests")]

use tbaa_bench::rng::XorShift64;
use tbaa_repro::alias::{AliasAnalysis, Level, Tbaa, World};
use tbaa_repro::ir::{self, Program};
use tbaa_repro::opt::rle::run_rle;
use tbaa_repro::opt::{optimize, OptOptions};
use tbaa_repro::sim::interp::{run, NullHook, RunConfig};

/// Cases per property; every case uses seed `SEED + case`.
const CASES: u64 = 48;
const SEED: u64 = 0x7baa_0001;

/// A model of a small random type hierarchy: each type has one integer
/// field and one pointer field, and optionally a supertype.
#[derive(Debug, Clone)]
struct TypeSpec {
    parent: Option<usize>,
    ptr_target: usize,
}

#[derive(Debug, Clone)]
struct ProgSpec {
    types: Vec<TypeSpec>,
    /// Declared type of each pointer global.
    globals: Vec<usize>,
    stmts: Vec<Stmt>,
}

#[derive(Debug, Clone)]
enum Stmt {
    /// `g<i> := NEW(T<t>)` where `t` is a subtype of the declared type.
    New { g: usize, t: usize },
    /// `g<i> := g<j>` (types compatible by construction).
    Copy { dst: usize, src: usize },
    /// `g<i>.v<f> := <k>` — int field store (field declared on an
    /// ancestor of g's type).
    StoreInt { g: usize, f: usize, k: i64 },
    /// `x := x + g<i>.v<f>` — int field load.
    LoadInt { g: usize, f: usize },
    /// `g<i>.q<f> := g<j>` — pointer field store.
    StorePtr { g: usize, f: usize, src: usize },
    /// A bounded FOR loop around some simple statements.
    Loop { n: u32, body: Vec<Stmt> },
    /// An IF on the accumulator.
    Cond {
        limit: i64,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
}

/// All ancestors of `t` including itself.
fn ancestry(types: &[TypeSpec], t: usize) -> Vec<usize> {
    let mut out = vec![t];
    let mut cur = t;
    while let Some(p) = types[cur].parent {
        out.push(p);
        cur = p;
    }
    out
}

fn subtypes(types: &[TypeSpec], t: usize) -> Vec<usize> {
    (0..types.len())
        .filter(|&s| ancestry(types, s).contains(&t))
        .collect()
}

/// `a` assignable to a variable of declared type `d`?
fn assignable(types: &[TypeSpec], d: usize, a: usize) -> bool {
    ancestry(types, a).contains(&d)
}

fn render(spec: &ProgSpec) -> String {
    let mut s = String::from("MODULE Rand;\nTYPE\n");
    for (i, t) in spec.types.iter().enumerate() {
        let sup = t.parent.map(|p| format!("T{p} ")).unwrap_or_default();
        s.push_str(&format!(
            "  T{i} = {sup}OBJECT v{i}: INTEGER; q{i}: T{}; END;\n",
            t.ptr_target
        ));
    }
    s.push_str("VAR\n  x: INTEGER;\n");
    for (i, &t) in spec.globals.iter().enumerate() {
        s.push_str(&format!("  g{i}: T{t};\n"));
    }
    s.push_str("BEGIN\n  x := 0;\n");
    // Initialize every global so field accesses never trap.
    for (i, &t) in spec.globals.iter().enumerate() {
        s.push_str(&format!("  g{i} := NEW(T{t});\n"));
    }
    fn emit(out: &mut String, stmts: &[Stmt], indent: usize) {
        let pad = "  ".repeat(indent + 1);
        for st in stmts {
            match st {
                Stmt::New { g, t } => out.push_str(&format!("{pad}g{g} := NEW(T{t});\n")),
                Stmt::Copy { dst, src } => out.push_str(&format!("{pad}g{dst} := g{src};\n")),
                Stmt::StoreInt { g, f, k } => out.push_str(&format!("{pad}g{g}.v{f} := {k};\n")),
                Stmt::LoadInt { g, f } => out.push_str(&format!("{pad}x := x + g{g}.v{f};\n")),
                Stmt::StorePtr { g, f, src } => {
                    out.push_str(&format!("{pad}g{g}.q{f} := g{src};\n"))
                }
                Stmt::Loop { n, body } => {
                    out.push_str(&format!("{pad}FOR i{indent} := 1 TO {n} DO\n"));
                    emit(out, body, indent + 1);
                    out.push_str(&format!("{pad}END;\n"));
                }
                Stmt::Cond {
                    limit,
                    then_body,
                    else_body,
                } => {
                    out.push_str(&format!("{pad}IF x < {limit} THEN\n"));
                    emit(out, then_body, indent + 1);
                    out.push_str(&format!("{pad}ELSE\n"));
                    emit(out, else_body, indent + 1);
                    out.push_str(&format!("{pad}END;\n"));
                }
            }
        }
    }
    emit(&mut s, &spec.stmts, 0);
    s.push_str("  PRINTI(x);\n");
    // Also observe the pointer structure so stores are not dead.
    for (i, _) in spec.globals.iter().enumerate() {
        s.push_str(&format!("  IF g{i} # NIL THEN x := x + 1 END;\n"));
    }
    s.push_str("  PRINTI(x);\nEND Rand.\n");
    s
}

/// One random *well-typed* simple (non-nested) statement, or `None` when
/// the drawn shape cannot be made type-correct (the caller redraws).
fn gen_simple(rng: &mut XorShift64, types: &[TypeSpec], globals: &[usize]) -> Option<Stmt> {
    let ng = globals.len();
    let gi = rng.index(ng);
    let gj = rng.index(ng);
    let fsel = rng.index(256);
    let k = rng.range_i64(-9, 100);
    let ti = globals[gi];
    let tj = globals[gj];
    match rng.index(5) {
        0 => {
            // gi := NEW(subtype of decl(gi))
            let subs = subtypes(types, ti);
            let t = subs[fsel % subs.len()];
            Some(Stmt::New { g: gi, t })
        }
        1 => {
            if assignable(types, ti, tj) {
                Some(Stmt::Copy { dst: gi, src: gj })
            } else {
                None
            }
        }
        2 => {
            let anc = ancestry(types, ti);
            let f = anc[fsel % anc.len()];
            Some(Stmt::StoreInt { g: gi, f, k })
        }
        3 => {
            let anc = ancestry(types, ti);
            let f = anc[fsel % anc.len()];
            Some(Stmt::LoadInt { g: gi, f })
        }
        _ => {
            // gi.q<f> := gj if assignable to the field's target.
            let anc = ancestry(types, ti);
            let f = anc[fsel % anc.len()];
            let target = types[f].ptr_target;
            if assignable(types, target, tj) {
                Some(Stmt::StorePtr { g: gi, f, src: gj })
            } else {
                None
            }
        }
    }
}

/// Redraws until a well-typed simple statement comes out (a `New` is
/// always valid, so this terminates quickly).
fn gen_simple_retry(rng: &mut XorShift64, types: &[TypeSpec], globals: &[usize]) -> Stmt {
    loop {
        if let Some(s) = gen_simple(rng, types, globals) {
            return s;
        }
    }
}

fn gen_simple_vec(
    rng: &mut XorShift64,
    types: &[TypeSpec],
    globals: &[usize],
    lo: usize,
    hi: usize,
) -> Vec<Stmt> {
    let n = lo + rng.index(hi - lo);
    (0..n).map(|_| gen_simple_retry(rng, types, globals)).collect()
}

/// A random program: 2..6 types in a random forest, 2..5 pointer
/// globals, 3..20 statements mixing simple statements, bounded loops,
/// and conditionals — the same distribution the proptest version drew.
fn gen_spec(rng: &mut XorShift64) -> ProgSpec {
    let nt = 2 + rng.index(4);
    let types: Vec<TypeSpec> = (0..nt)
        .map(|i| {
            let p = rng.index(1 << 16);
            let q = rng.index(nt);
            TypeSpec {
                parent: if i == 0 || p.is_multiple_of(3) {
                    None
                } else {
                    Some(p % i)
                },
                ptr_target: q,
            }
        })
        .collect();
    let globals: Vec<usize> = (0..2 + rng.index(3)).map(|_| rng.index(nt)).collect();
    let ns = 3 + rng.index(17);
    let stmts = (0..ns)
        .map(|_| match rng.index(6) {
            0 => Stmt::Loop {
                n: 1 + rng.index(7) as u32,
                body: gen_simple_vec(rng, &types, &globals, 1, 4),
            },
            1 => Stmt::Cond {
                limit: rng.range_i64(0, 50),
                then_body: gen_simple_vec(rng, &types, &globals, 1, 3),
                else_body: gen_simple_vec(rng, &types, &globals, 1, 3),
            },
            _ => gen_simple_retry(rng, &types, &globals),
        })
        .collect();
    ProgSpec {
        types,
        globals,
        stmts,
    }
}

fn compile(spec: &ProgSpec) -> Program {
    let src = render(spec);
    ir::compile_to_ir(&src)
        .unwrap_or_else(|e| panic!("generated program must compile:\n{src}\n{e}"))
}

fn run_output(prog: &Program) -> (String, u64) {
    let out =
        run(prog, &mut NullHook, RunConfig::default()).expect("generated programs are trap-free");
    (out.output, out.counts.heap_loads)
}

/// Runs `check` against `CASES` random programs with reproducible seeds.
fn for_each_case(check: impl Fn(&ProgSpec)) {
    for case in 0..CASES {
        let mut rng = XorShift64::new(SEED + case);
        let spec = gen_spec(&mut rng);
        check(&spec);
    }
}

/// Every generated program compiles and runs deterministically.
#[test]
fn generated_programs_run() {
    for_each_case(|spec| {
        let prog = compile(spec);
        let (o1, _) = run_output(&prog);
        let (o2, _) = run_output(&prog);
        assert_eq!(o1, o2);
    });
}

/// RLE at every level preserves output and never adds heap loads.
#[test]
fn rle_preserves_semantics() {
    for_each_case(|spec| {
        let base = compile(spec);
        let (base_out, base_loads) = run_output(&base);
        for level in Level::ALL {
            let mut opt = compile(spec);
            let analysis = Tbaa::build(&opt, level, World::Closed);
            run_rle(&mut opt, &analysis);
            let (out, loads) = run_output(&opt);
            assert_eq!(base_out, out, "level {level}");
            assert!(loads <= base_loads, "level {level}: {loads} > {base_loads}");
        }
    });
}

/// The full pipeline (devirt + inline + copyprop + RLE + DSE)
/// preserves output too.
#[test]
fn full_pipeline_preserves_semantics() {
    for_each_case(|spec| {
        let base = compile(spec);
        let (base_out, _) = run_output(&base);
        let mut opt = compile(spec);
        let mut opts = OptOptions::full(Level::SmFieldTypeRefs);
        opts.copy_propagation = true;
        opts.dead_store_elimination = true;
        optimize(&mut opt, &opts);
        let (out, _) = run_output(&opt);
        assert_eq!(base_out, out);
    });
}

/// PRE and DSE individually preserve semantics on random programs.
#[test]
fn pre_and_dse_preserve_semantics() {
    for_each_case(|spec| {
        let base = compile(spec);
        let (base_out, base_loads) = run_output(&base);
        {
            let mut opt = compile(spec);
            let analysis = Tbaa::build(&opt, Level::SmFieldTypeRefs, World::Closed);
            tbaa_repro::opt::pre::run_rle_with_pre(&mut opt, &analysis);
            let (out, loads) = run_output(&opt);
            assert_eq!(base_out, out, "PRE");
            assert!(loads <= base_loads, "PRE must not add loads");
        }
        {
            let mut opt = compile(spec);
            let analysis = Tbaa::build(&opt, Level::SmFieldTypeRefs, World::Closed);
            tbaa_repro::opt::dse::run_dse(&mut opt, &analysis);
            let (out, _) = run_output(&opt);
            assert_eq!(base_out, out, "DSE");
        }
        {
            // Steensgaard-driven RLE is also semantics-preserving.
            let mut opt = compile(spec);
            let st = tbaa_repro::alias::Steensgaard::build(&opt);
            run_rle(&mut opt, &st);
            let (out, _) = run_output(&opt);
            assert_eq!(base_out, out, "Steensgaard RLE");
        }
    });
}

/// may_alias is symmetric and reflexive on canonical paths, and the
/// three levels are monotonically precise (SM ⊆ FTD ⊆ TD).
#[test]
fn alias_lattice_properties() {
    for_each_case(|spec| {
        let prog = compile(spec);
        let td = Tbaa::build(&prog, Level::TypeDecl, World::Closed);
        let ftd = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
        let sm = Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed);
        let sites: Vec<_> = prog.heap_ref_sites();
        for &(_, a, _) in sites.iter().take(24) {
            if prog.aps.path(a).is_canonical() {
                assert!(ftd.may_alias(&prog.aps, a, a), "reflexive");
            }
            for &(_, b, _) in sites.iter().take(24) {
                for an in [&td as &dyn AliasAnalysis, &ftd, &sm] {
                    assert_eq!(
                        an.may_alias(&prog.aps, a, b),
                        an.may_alias(&prog.aps, b, a),
                        "symmetry"
                    );
                }
                if sm.may_alias(&prog.aps, a, b) {
                    assert!(ftd.may_alias(&prog.aps, a, b), "SM implies FTD");
                }
                if ftd.may_alias(&prog.aps, a, b) {
                    assert!(td.may_alias(&prog.aps, a, b), "FTD implies TD");
                }
            }
        }
    });
}

/// The open world is conservative: it can only add alias pairs, and
/// RLE under it still preserves semantics.
#[test]
fn open_world_is_conservative() {
    for_each_case(|spec| {
        let prog = compile(spec);
        let closed = Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed);
        let open = Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Open);
        let sites: Vec<_> = prog.heap_ref_sites();
        for &(_, a, _) in sites.iter().take(24) {
            for &(_, b, _) in sites.iter().take(24) {
                if closed.may_alias(&prog.aps, a, b) {
                    assert!(
                        open.may_alias(&prog.aps, a, b),
                        "open world must include closed-world pairs"
                    );
                }
            }
        }
        let base = compile(spec);
        let (base_out, _) = run_output(&base);
        let mut opt = compile(spec);
        run_rle(&mut opt, &open);
        let (out, _) = run_output(&opt);
        assert_eq!(base_out, out);
    });
}
