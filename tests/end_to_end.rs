//! Cross-crate integration tests: front end → IR → analyses → optimizer
//! → simulator, on hand-written programs with known answers.

use tbaa_repro::alias::{AliasAnalysis, Level, NoAlias, Tbaa, World};
use tbaa_repro::ir::{self, pretty};
use tbaa_repro::opt::modref::ModRef;
use tbaa_repro::opt::{OptOptions, RleStats};
use tbaa_repro::sim::interp::{run, NullHook, RunConfig};
use tbaa_repro::Pipeline;

/// The paper's headline pipeline — RLE at `level`, closed world —
/// through the builder API.
fn rle_pipeline(src: &str, level: Level) -> (ir::Program, RleStats) {
    let result = Pipeline::new(src)
        .level(level)
        .world(World::Closed)
        .optimize(OptOptions::builder().rle(true).build())
        .run()
        .unwrap();
    (result.program, result.report.rle)
}

/// A linked-list summation whose header load is loop-invariant: the
/// classic Figure 6 situation end to end.
#[test]
fn linked_list_sum_pipeline() {
    let src = "
        MODULE List;
        TYPE Node = OBJECT val: INTEGER; next: Node; END;
             List = OBJECT head: Node; len: INTEGER; END;
        VAR l: List; n: Node; s: INTEGER;
        BEGIN
          l := NEW(List);
          FOR i := 1 TO 50 DO
            n := NEW(Node);
            n.val := i;
            n.next := l.head;
            l.head := n;
            l.len := l.len + 1;
          END;
          s := 0;
          n := l.head;
          WHILE n # NIL DO
            s := s + n.val * l.len;    (* l.len is loop invariant *)
            n := n.next;
          END;
          PRINTI(s);
        END List.";
    let base = ir::compile_to_ir(src).unwrap();
    let base_out = run(&base, &mut NullHook, RunConfig::default()).unwrap();
    assert_eq!(base_out.output, (50 * (1275)).to_string());

    let (opt, stats) = rle_pipeline(src, Level::SmFieldTypeRefs);
    assert!(stats.removed() >= 1, "l.len hoisted: {stats:?}");
    let opt_out = run(&opt, &mut NullHook, RunConfig::default()).unwrap();
    assert_eq!(base_out.output, opt_out.output);
    assert!(opt_out.counts.heap_loads < base_out.counts.heap_loads);
}

/// The paper's §2.4 example: SMTypeRefs proves `t` and `s` independent
/// when no assignment connects T and S1, which turns an otherwise killed
/// load into an RLE opportunity.
#[test]
fn sm_merges_enable_elimination() {
    let src = "
        MODULE Merge;
        TYPE T = OBJECT f: INTEGER; END; S1 = T OBJECT END;
        VAR t: T; s: S1; x, y: INTEGER;
        BEGIN
          t := NEW(T); s := NEW(S1);
          x := t.f;
          s.f := 5;        (* may alias under FieldTypeDecl, not under SM *)
          y := t.f;
          PRINTI(x + y + s.f);
        END Merge.";
    let (_, ftd) = rle_pipeline(src, Level::FieldTypeDecl);
    let (_, sm) = rle_pipeline(src, Level::SmFieldTypeRefs);
    assert_eq!(ftd.eliminated, 1, "store forwarding of s.f only");
    assert_eq!(sm.eliminated, 2, "plus the second t.f load");
}

/// Mod-ref summaries across three call levels gate hoisting correctly.
#[test]
fn modref_gates_hoisting_across_calls() {
    let src = "
        MODULE MR;
        TYPE T = OBJECT f: INTEGER; END;
        VAR t, u: T; s: INTEGER;
        PROCEDURE Touch (o: T) = BEGIN o.f := o.f + 1 END Touch;
        PROCEDURE Noop (o: T): INTEGER = BEGIN RETURN o.f END Noop;
        BEGIN
          t := NEW(T); u := NEW(T); t.f := 3;
          FOR i := 1 TO 10 DO
            s := s + t.f + Noop(u);    (* Noop does not store: t.f hoists *)
          END;
          FOR i := 1 TO 10 DO
            s := s + t.f;
            Touch(u);                  (* Touch stores a may-alias: no hoist *)
          END;
          PRINTI(s);
        END MR.";
    let prog = ir::compile_to_ir(src).unwrap();
    let mr = ModRef::build(&prog);
    let touch = prog.func_id("Touch").unwrap();
    let noop = prog.func_id("Noop").unwrap();
    assert_eq!(mr.summary(touch).stores.len(), 1);
    assert!(mr.summary(noop).stores.is_empty());
    assert!(!mr.summary(noop).loads.is_empty());

    let base_out = run(&prog, &mut NullHook, RunConfig::default()).unwrap();
    let (opt, stats) = rle_pipeline(src, Level::SmFieldTypeRefs);
    let opt_out = run(&opt, &mut NullHook, RunConfig::default()).unwrap();
    assert_eq!(base_out.output, opt_out.output);
    assert!(stats.hoisted >= 1, "first loop hoists t.f: {stats:?}");
}

/// WITH and VAR parameters both take addresses; after either, a REF
/// dereference may alias the field (Table 2 case 3) and RLE must stay
/// conservative — verified dynamically by writing through the alias.
#[test]
fn address_taken_semantics_end_to_end() {
    let src = "
        MODULE Addr;
        TYPE T = OBJECT f: INTEGER; END;
        PROCEDURE Set (VAR v: INTEGER; k: INTEGER) = BEGIN v := k END Set;
        VAR t: T; x, y: INTEGER;
        BEGIN
          t := NEW(T);
          t.f := 1;
          x := t.f;
          Set(t.f, 42);
          y := t.f;          (* must reload: 42, not 1 *)
          PRINTI(x * 100 + y);
        END Addr.";
    let base = ir::compile_to_ir(src).unwrap();
    let out = run(&base, &mut NullHook, RunConfig::default()).unwrap();
    assert_eq!(out.output, "142");
    let (opt, _) = rle_pipeline(src, Level::SmFieldTypeRefs);
    let opt_out = run(&opt, &mut NullHook, RunConfig::default()).unwrap();
    assert_eq!(opt_out.output, "142");
}

/// The perfect-alias oracle eliminates at least as much as TBAA on any
/// program (it is the upper bound of §3.5).
#[test]
fn oracle_is_an_upper_bound() {
    for b in tbaa_repro::benchsuite::suite()
        .iter()
        .filter(|b| !b.interactive)
    {
        let mut p1 = b.compile(1).unwrap();
        let a = Tbaa::build(&p1, Level::SmFieldTypeRefs, World::Closed);
        let tbaa_stats = tbaa_repro::opt::rle::run_rle(&mut p1, &a);
        let mut p2 = b.compile(1).unwrap();
        let oracle_stats = tbaa_repro::opt::rle::run_rle(&mut p2, &NoAlias);
        assert!(
            oracle_stats.removed() >= tbaa_stats.removed(),
            "{}: oracle {} >= tbaa {}",
            b.name,
            oracle_stats.removed(),
            tbaa_stats.removed()
        );
    }
}

/// Access-path pretty-printing round-trips the paper's notation.
#[test]
fn access_path_notation() {
    let prog = ir::compile_to_ir(
        "MODULE N;
         TYPE A = ARRAY OF INTEGER;
              B = OBJECT arr: A; END;
              P = REF INTEGER;
         VAR b: B; p: P; x: INTEGER;
         BEGIN
           b := NEW(B); b.arr := NEW(A, 3); p := NEW(P);
           FOR i := 0 TO 2 DO x := x + b.arr[i] END;
           x := x + p^ + NUMBER(b.arr);
           PRINTI(x);
         END N.",
    )
    .unwrap();
    let rendered: Vec<String> = prog
        .heap_ref_sites()
        .iter()
        .map(|s| pretty::access_path(&prog, s.1))
        .collect();
    assert!(rendered.iter().any(|s| s == "b.arr"), "{rendered:?}");
    assert!(
        rendered.iter().any(|s| s.starts_with("b.arr[")),
        "{rendered:?}"
    );
    assert!(rendered.iter().any(|s| s == "p^"), "{rendered:?}");
    assert!(rendered.iter().any(|s| s == "b.arr.#len"), "{rendered:?}");
}

/// Method dispatch on a two-level hierarchy devirtualizes and inlines,
/// preserving the dynamic answer.
#[test]
fn devirt_inline_end_to_end() {
    let src = "
        MODULE DV;
        TYPE
          Shape = OBJECT w, h: INTEGER; METHODS area (): INTEGER := RectArea; END;
          Tri = Shape OBJECT OVERRIDES area := TriArea; END;
        PROCEDURE RectArea (self: Shape): INTEGER = BEGIN RETURN self.w * self.h END RectArea;
        PROCEDURE TriArea (self: Tri): INTEGER = BEGIN RETURN self.w * self.h DIV 2 END TriArea;
        VAR s: Shape; total: INTEGER;
        BEGIN
          s := NEW(Shape); s.w := 4; s.h := 6;
          total := s.area();
          s := NEW(Tri); s.w := 4; s.h := 6;
          total := total + s.area();
          PRINTI(total);
        END DV.";
    let base = ir::compile_to_ir(src).unwrap();
    let base_out = run(&base, &mut NullHook, RunConfig::default()).unwrap();
    assert_eq!(base_out.output, "36");
    let mut opt = ir::compile_to_ir(src).unwrap();
    let report = tbaa_repro::opt::optimize(
        &mut opt,
        &tbaa_repro::opt::OptOptions::full(Level::SmFieldTypeRefs),
    );
    // Both Shape and Tri are allocated, so the sites stay polymorphic.
    assert_eq!(report.devirt.resolved, 0);
    let out = run(&opt, &mut NullHook, RunConfig::default()).unwrap();
    assert_eq!(out.output, "36");
}

/// Alias queries agree between the trait object and concrete interfaces.
#[test]
fn trait_object_usability() {
    let prog = ir::compile_to_ir(
        "MODULE T;
         TYPE X = OBJECT f: INTEGER; END;
         VAR a: X; v: INTEGER;
         BEGIN a := NEW(X); a.f := 1; v := a.f; PRINTI(v); END T.",
    )
    .unwrap();
    let analyses: Vec<Box<dyn AliasAnalysis>> = vec![
        Box::new(Tbaa::build(&prog, Level::TypeDecl, World::Closed)),
        Box::new(Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed)),
        Box::new(Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed)),
        Box::new(NoAlias),
    ];
    let sites = prog.heap_ref_sites();
    let (store, load) = (sites[0].1, sites[1].1);
    for a in &analyses {
        assert!(
            a.may_alias(&prog.aps, store, load),
            "{} must see the identical path",
            a.name()
        );
    }
}
