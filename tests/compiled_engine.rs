//! Differential suite for the compiled alias-query engine.
//!
//! [`CompiledAliasEngine`] is a pure performance artifact: for every
//! access-path pair it must return *exactly* what the naive
//! tree-walking `Tbaa::may_alias_paths` returns, at every precision
//! level, under both world assumptions, on every benchsuite program.
//! These tests enumerate that whole space (the suite's AP tables are
//! small enough to afford the full cross product) and then stress the
//! memo with seeded random interleavings.

use std::sync::Arc;

use tbaa::analysis::{Level, Tbaa};
use tbaa::{AliasAnalysis, CompiledAliasEngine, World, DENSE_LIMIT};
use tbaa_bench::rng::XorShift64;
use tbaa_benchsuite::suite;
use tbaa_ir::ir::Program;
use tbaa_ir::path::ApId;

const SCALE: u32 = 1;
const WORLDS: [World; 2] = [World::Closed, World::Open];

fn all_ids(prog: &Program) -> Vec<ApId> {
    (0..prog.aps.len() as u32).map(ApId).collect()
}

/// Every pair, every level, every world, every program: compiled ==
/// naive, for both the memoized and the uncached entry points, plus the
/// `wild_may_modify` leaf classification.
#[test]
fn compiled_engine_matches_naive_across_the_suite() {
    for bench in suite() {
        let prog = bench.compile(SCALE).expect("benchsuite compiles");
        let ids = all_ids(&prog);
        for level in Level::ALL {
            for world in WORLDS {
                let naive = Arc::new(Tbaa::build(&prog, level, world));
                // Dense matrix and lazy memo must both match.
                for dense_limit in [DENSE_LIMIT, 0] {
                    let engine = CompiledAliasEngine::compile_with_dense_limit(
                        &prog,
                        naive.clone(),
                        dense_limit,
                    );
                    for &a in &ids {
                        assert_eq!(
                            engine.wild_may_modify(&prog.aps, a),
                            naive.wild_may_modify(&prog.aps, a),
                            "wild_may_modify diverged: {} {level:?} {world:?} {a:?}",
                            bench.name
                        );
                        for &b in &ids {
                            let want = naive.may_alias(&prog.aps, a, b);
                            assert_eq!(
                                engine.may_alias(&prog.aps, a, b),
                                want,
                                "memoized walk diverged: {} {level:?} {world:?} limit \
                                 {dense_limit} {a:?} vs {b:?}",
                                bench.name
                            );
                            assert_eq!(
                                engine.may_alias_uncached(&prog.aps, a, b),
                                want,
                                "uncached walk diverged: {} {level:?} {world:?} limit \
                                 {dense_limit} {a:?} vs {b:?}",
                                bench.name
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Seeded fuzz: random query interleavings (memoized and uncached mixed
/// in random order, with repeats, forced into the lazy memo regime)
/// never desynchronize the memo from the naive answers.
#[test]
fn random_query_interleavings_stay_consistent() {
    let mut rng = XorShift64::new(0xB1A5_0F75);
    for bench in suite() {
        let prog = bench.compile(SCALE).expect("benchsuite compiles");
        let ids = all_ids(&prog);
        let naive = Arc::new(Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed));
        let engine = CompiledAliasEngine::compile_with_dense_limit(&prog, naive.clone(), 0);
        for _ in 0..2_000 {
            let a = ids[rng.index(ids.len())];
            let b = ids[rng.index(ids.len())];
            let want = naive.may_alias(&prog.aps, a, b);
            let got = if rng.below(2) == 0 {
                engine.may_alias(&prog.aps, a, b)
            } else {
                engine.may_alias_uncached(&prog.aps, a, b)
            };
            assert_eq!(got, want, "{}: {a:?} vs {b:?}", bench.name);
        }
        let stats = engine.stats();
        assert_eq!(
            stats.fallbacks, 0,
            "all ids were compiled, nothing should fall back"
        );
        assert!(stats.memo_hits > 0, "repeat queries must hit the memo");
    }
}

/// Access paths interned *after* compilation (as optimization passes do
/// when they rewrite programs) are answered through the naive-oracle
/// fallback and still agree with a from-scratch naive analysis.
#[test]
fn post_compile_paths_use_the_fallback_and_stay_correct() {
    for bench in suite() {
        let prog = bench.compile(SCALE).expect("benchsuite compiles");
        let naive = Arc::new(Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed));
        let engine = CompiledAliasEngine::compile(&prog, naive.clone());

        // Simulate a pass: clone the table and intern parents of every
        // multi-step path — new ids the engine has never seen.
        let mut aps = prog.aps.clone();
        let fresh: Vec<ApId> = all_ids(&prog)
            .iter()
            .filter_map(|&id| {
                let parent = aps.path(id).parent()?;
                let fresh = aps.intern(parent);
                (fresh.0 as usize >= prog.aps.len()).then_some(fresh)
            })
            .collect();
        if fresh.is_empty() {
            continue;
        }
        let mut fallbacks_expected: u64 = 0;
        for &a in &fresh {
            for &b in all_ids(&prog).iter().chain(&fresh) {
                fallbacks_expected += 2;
                let want = naive.may_alias(&aps, a, b);
                assert_eq!(engine.may_alias(&aps, a, b), want, "{}", bench.name);
                assert_eq!(engine.may_alias(&aps, b, a), want, "{}", bench.name);
            }
        }
        assert_eq!(
            engine.stats().fallbacks,
            fallbacks_expected,
            "{}: every fresh-id query must take the oracle path",
            bench.name
        );
    }
}
