//! Durable-journal differential: a daemon restarted over its
//! `--journal-dir` must be *indistinguishable* from one that never died.
//!
//! Four proofs, in the counter-walk style of the incremental suite (one
//! sequential connection → fully deterministic counters):
//!
//! * **Byte identity across a restart** — a seeded edit corpus is
//!   loaded and queried, the server is brought down, and a second
//!   server over the same journal dir must answer every re-`load` with
//!   `cached:true` under the *same* session id, and every
//!   `alias`/`pairs`/`rle` at every level × world byte-identical to the
//!   from-scratch `Pipeline` oracle.
//! * **LRU order survives recovery** — a capacity-1 store replays the
//!   journal in append order, so only the most recent session is live
//!   after restart; the evicted ids answer `no_session`, and fresh ids
//!   mint past the recovered watermark (no id reuse, ever).
//! * **Warm restart is incremental** — a one-function edit loaded just
//!   before the crash replays through the store's `IncrCompiler` on
//!   recovery: exactly `n−1` unit hits, with the cost visible in the
//!   `incr.*` counters rather than hidden in bespoke recovery code.
//! * **Every seeded fault schedule recovers a clean prefix** — torn
//!   tails, truncations, bit flips, and duplicated records from
//!   [`tbaa_server::fault`] leave a journal that still boots, recovers
//!   exactly the sessions [`tbaa_server::journal::scan`] + `fold`
//!   predict, and answers for them byte-identically.

use tbaa::analysis::Level;
use tbaa::World;
use tbaa_bench::load::{
    mutate_contents, CheckOutcome, Content, DiffChecker, LineSource, ReqKind, Wire,
};
use tbaa_server::fault::{self, Fault, FaultPlan};
use tbaa_server::journal;
use tbaa_server::json::{parse, Value};
use tbaa_server::{Server, ServerConfig};

fn counter(stats: &Value, name: &str) -> i64 {
    stats
        .get("stats")
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Value::as_i64)
        .unwrap_or(0)
}

/// A scratch journal directory, wiped on creation and on drop.
struct JournalDir(std::path::PathBuf);

impl JournalDir {
    fn new(tag: &str) -> JournalDir {
        let dir = std::env::temp_dir().join(format!(
            "tbaa-jrn-diff-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        JournalDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }

    fn file(&self) -> std::path::PathBuf {
        self.0.join(journal::FILE_NAME)
    }
}

impl Drop for JournalDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Driver {
    writer: Wire,
    src: LineSource,
}

impl Driver {
    fn connect(addr: std::net::SocketAddr) -> Driver {
        let wire = Wire::connect_tcp(addr).expect("connect");
        let writer = wire.try_clone().expect("clone");
        Driver {
            writer,
            src: LineSource::new(wire),
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_line(line).expect("send");
        self.src.read_line_blocking().expect("reply")
    }

    fn stats(&mut self) -> Value<'static> {
        let raw = self.request(r#"{"op":"stats"}"#);
        parse(&raw).expect("stats parses").into_owned()
    }

    fn load(&mut self, content: &Content, checker: &DiffChecker) -> (String, bool) {
        let raw = self.request(&content.load_line());
        let kind = ReqKind::Load {
            key: content.key(),
        };
        let CheckOutcome::Loaded { sid } = checker.check(&kind, &raw) else {
            panic!("load failed: {raw}");
        };
        let cached = parse(&raw)
            .unwrap()
            .get("cached")
            .and_then(Value::as_bool)
            .unwrap();
        (sid, cached)
    }
}

/// Spawns a journal-backed server; `capacity` 0 keeps the default.
fn boot(dir: &std::path::Path, capacity: usize) -> tbaa_server::ServerHandle {
    let mut b = ServerConfig::builder().journal_dir(dir);
    if capacity > 0 {
        b = b.session_capacity(capacity);
    }
    Server::bind(b.build()).expect("bind").spawn()
}

fn stop(handle: tbaa_server::ServerHandle) {
    handle.state().request_shutdown();
    handle.join().expect("clean shutdown");
}

/// The numeric part of a session id (`"s12"` → 12).
fn sid_num(sid: &str) -> u64 {
    sid.strip_prefix('s')
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("malformed sid {sid:?}"))
}

const LEVELS: [(&str, Level); 3] = [
    ("typedecl", Level::TypeDecl),
    ("fields", Level::FieldTypeDecl),
    ("merges", Level::SmFieldTypeRefs),
];
const WORLDS: [(&str, World); 2] = [("closed", World::Closed), ("open", World::Open)];

/// Fires `alias`, `pairs`, and `rle` for every level × world against a
/// session and byte-checks each reply against the oracle.
fn sweep_queries(d: &mut Driver, checker: &DiffChecker, content: &Content, sid: &str) {
    let key = content.key();
    let paths = checker.oracle().paths(&key);
    let pairs = vec![
        (paths[0].clone(), paths[paths.len() / 2].clone()),
        (paths.last().unwrap().clone(), paths[0].clone()),
    ];
    for (level_str, level) in LEVELS {
        for (world_str, world) in WORLDS {
            let alias = format!(
                r#"{{"op":"alias","session":"{sid}","level":"{level_str}","world":"{world_str}","pairs":[["{}","{}"],["{}","{}"]]}}"#,
                pairs[0].0, pairs[0].1, pairs[1].0, pairs[1].1
            );
            let raw = d.request(&alias);
            let kind = ReqKind::Alias {
                key: key.clone(),
                sid: sid.to_string(),
                level,
                world,
                pairs: pairs.clone(),
            };
            assert!(
                matches!(checker.check(&kind, &raw), CheckOutcome::Ok),
                "alias diverged at {level_str}/{world_str}:\n{}",
                checker.details().join("\n")
            );
            for op in ["pairs", "rle"] {
                let line = format!(
                    r#"{{"op":"{op}","session":"{sid}","level":"{level_str}","world":"{world_str}"}}"#
                );
                let raw = d.request(&line);
                let kind = match op {
                    "pairs" => ReqKind::Pairs {
                        key: key.clone(),
                        sid: sid.to_string(),
                        level,
                        world,
                    },
                    _ => ReqKind::Rle {
                        key: key.clone(),
                        sid: sid.to_string(),
                        level,
                        world,
                    },
                };
                assert!(
                    matches!(checker.check(&kind, &raw), CheckOutcome::Ok),
                    "{op} diverged at {level_str}/{world_str}:\n{}",
                    checker.details().join("\n")
                );
            }
        }
    }
}

/// A seeded edit corpus loaded into a journal-backed server, then the
/// same journal booted fresh: every session comes back under its old
/// id, every query at every level × world is byte-identical to the
/// oracle, and a brand-new load mints past the recovered watermark.
#[test]
fn restart_preserves_session_ids_and_replies_byte_identically() {
    const VERSIONS: usize = 4;
    let dir = JournalDir::new("restart");
    let contents = mutate_contents(13, VERSIONS);
    let checker = DiffChecker::new(&contents);

    // First life: load and query everything.
    let mut sids = Vec::new();
    let handle = boot(dir.path(), 0);
    {
        let mut d = Driver::connect(handle.addr());
        for content in &contents {
            let (sid, cached) = d.load(content, &checker);
            assert!(!cached, "every version is new content");
            sweep_queries(&mut d, &checker, content, &sid);
            sids.push(sid);
        }
        let s = d.stats();
        assert_eq!(
            counter(&s, "journal.appends"),
            VERSIONS as i64,
            "one journal append per admitted load"
        );
    }
    stop(handle);

    // Second life, same journal dir.
    let handle = boot(dir.path(), 0);
    let mut d = Driver::connect(handle.addr());
    let s = d.stats();
    assert_eq!(
        counter(&s, "journal.replayed"),
        VERSIONS as i64,
        "every journaled load replays on boot"
    );
    assert!(
        counter(&s, "incr.func_hits") > 0,
        "replaying superseding versions goes through the incremental \
         compiler; recovery cost shows up in incr.*, not nowhere"
    );

    // Every session answers under its pre-crash id, from cache.
    for (content, old_sid) in contents.iter().zip(&sids) {
        let (sid, cached) = d.load(content, &checker);
        assert!(cached, "recovered session must not recompile");
        assert_eq!(&sid, old_sid, "recovery must not re-mint session ids");
        sweep_queries(&mut d, &checker, content, &sid);
    }

    // A genuinely new content mints beyond every recovered id.
    let fresh = Content::Bench {
        name: "ktree".into(),
        scale: 1,
    };
    let fresh_checker = DiffChecker::new(std::slice::from_ref(&fresh));
    let (fresh_sid, _) = d.load(&fresh, &fresh_checker);
    let watermark = sids.iter().map(|s| sid_num(s)).max().unwrap();
    assert!(
        sid_num(&fresh_sid) > watermark,
        "fresh sid {fresh_sid} must mint past the recovered watermark {watermark}"
    );

    assert_eq!(checker.mismatches(), 0, "{:?}", checker.details());
    assert_eq!(fresh_checker.mismatches(), 0, "{:?}", fresh_checker.details());
    stop(handle);
}

/// The watermark must outlive the session it came from: when the
/// *highest-minted* sid is unloaded before the crash, replay never
/// touches it — only the mark/fold watermark knows it existed. A
/// recovered daemon must still answer `no_session` for it and mint
/// fresh ids strictly past it; re-minting would silently resolve a
/// stale client's id to a different session.
#[test]
fn unloaded_top_sid_is_never_reminted_after_restart() {
    let dir = JournalDir::new("unload-top");
    let a = Content::Bench {
        name: "ktree".into(),
        scale: 1,
    };
    let b = Content::Bench {
        name: "slisp".into(),
        scale: 1,
    };
    let contents = vec![a.clone(), b.clone()];
    let checker = DiffChecker::new(&contents);

    let handle = boot(dir.path(), 0);
    let (sid_a, sid_b);
    {
        let mut d = Driver::connect(handle.addr());
        let (sa, _) = d.load(&a, &checker);
        let (sb, _) = d.load(&b, &checker);
        assert!(
            sid_num(&sb) > sid_num(&sa),
            "the second load mints the higher sid"
        );
        let raw = d.request(&format!(r#"{{"op":"unload","session":"{sb}"}}"#));
        let v = parse(&raw).expect("unload reply parses");
        assert_eq!(v.get("unloaded").and_then(Value::as_bool), Some(true));
        sid_a = sa;
        sid_b = sb;
    }
    stop(handle);

    let handle = boot(dir.path(), 0);
    let mut d = Driver::connect(handle.addr());
    let s = d.stats();
    assert_eq!(
        counter(&s, "journal.replayed"),
        1,
        "only the surviving session replays"
    );

    // The stale top sid is dead, not someone else's session.
    let raw = d.request(&format!(
        r#"{{"op":"pairs","session":"{sid_b}","level":"typedecl","world":"closed"}}"#
    ));
    let v = parse(&raw).expect("error reply parses");
    assert_eq!(
        v.get("error").and_then(|e| e.get("kind")).and_then(Value::as_str),
        Some("no_session"),
        "an unloaded pre-crash sid must stay dead after recovery: {raw}"
    );

    // A brand-new content mints strictly past the unloaded watermark.
    let fresh = Content::Bench {
        name: "format".into(),
        scale: 1,
    };
    let fresh_checker = DiffChecker::new(std::slice::from_ref(&fresh));
    let (fresh_sid, _) = d.load(&fresh, &fresh_checker);
    assert!(
        sid_num(&fresh_sid) > sid_num(&sid_b),
        "fresh sid {fresh_sid} re-mints the unloaded pre-crash sid {sid_b}"
    );

    // The survivor still answers under its old id, byte-identically.
    let (sid, cached) = d.load(&a, &checker);
    assert!(cached, "the survivor must not recompile");
    assert_eq!(sid, sid_a);
    sweep_queries(&mut d, &checker, &a, &sid);

    assert_eq!(checker.mismatches(), 0, "{:?}", checker.details());
    assert_eq!(fresh_checker.mismatches(), 0, "{:?}", fresh_checker.details());
    stop(handle);
}

/// Recovery replays the journal in append order through the same LRU
/// store, so a capacity-1 server keeps only the *last* session loaded
/// before the crash — and never hands an evicted id to anyone else.
#[test]
fn capacity_1_recovery_keeps_only_the_most_recent_session() {
    let dir = JournalDir::new("lru1");
    let contents = mutate_contents(19, 3);
    let checker = DiffChecker::new(&contents);

    let mut sids = Vec::new();
    let handle = boot(dir.path(), 1);
    {
        let mut d = Driver::connect(handle.addr());
        for content in &contents {
            let (sid, _) = d.load(content, &checker);
            sids.push(sid);
        }
    }
    stop(handle);

    let handle = boot(dir.path(), 1);
    let mut d = Driver::connect(handle.addr());
    let s = d.stats();
    assert_eq!(
        counter(&s, "journal.replayed"),
        3,
        "all three loads replay; the store then evicts in journal order"
    );
    assert_eq!(
        counter(&s, "sessions.evictions"),
        2,
        "capacity-1 replay evicts the two older sessions"
    );

    // The survivor answers under its old id; the evicted ids are gone.
    let last = contents.last().unwrap();
    let (sid, cached) = d.load(last, &checker);
    assert!(cached, "the most recent session survived recovery");
    assert_eq!(&sid, sids.last().unwrap());
    sweep_queries(&mut d, &checker, last, &sid);
    for dead in &sids[..2] {
        let raw = d.request(&format!(
            r#"{{"op":"pairs","session":"{dead}","level":"typedecl","world":"closed"}}"#
        ));
        let v = parse(&raw).expect("error reply parses");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(Value::as_str),
            Some("no_session"),
            "evicted session must be gone, not resurrected: {raw}"
        );
    }

    // Reloading an evicted content recompiles under a *fresh* id past
    // the watermark — recovery must never re-mint a dead session's id.
    let (sid0, cached) = d.load(&contents[0], &checker);
    assert!(!cached, "evicted content recompiles");
    let watermark = sids.iter().map(|s| sid_num(s)).max().unwrap();
    assert!(
        sid_num(&sid0) > watermark,
        "recompiled sid {sid0} reuses a pre-crash id (watermark {watermark})"
    );

    assert_eq!(checker.mismatches(), 0, "{:?}", checker.details());
    stop(handle);
}

/// The exact-counter walk across a crash: a one-function edit loaded
/// just before the kill replays warm on recovery — the store-level
/// incremental cache turns the second replayed load into `n−1` unit
/// hits and exactly 1 re-lowered unit.
#[test]
fn warm_restart_replays_the_one_function_edit_incrementally() {
    const WALK_BASE: &str = "MODULE Walk;

TYPE
  Box = OBJECT
    val: INTEGER;
    next: Box;
  END;

VAR
  head: Box;
  total: INTEGER;

PROCEDURE Mk (v: INTEGER): Box =
VAR b: Box;
BEGIN
  b := NEW(Box);
  b.val := v + 1;
  b.next := head;
  RETURN b;
END Mk;

PROCEDURE Grow (n: INTEGER) =
BEGIN
  FOR i := 1 TO n DO
    head := Mk(i);
  END;
END Grow;

PROCEDURE Tally (): INTEGER =
VAR b: Box; s: INTEGER;
BEGIN
  s := 0;
  b := head;
  WHILE b # NIL DO
    s := s + b.val;
    b := b.next;
  END;
  RETURN s;
END Tally;

BEGIN
  head := NIL;
  Grow(8);
  total := Tally();
END Walk.
";
    /// Units in the walk program: three procedures plus the module body.
    const WALK_UNITS: i64 = 4;

    let dir = JournalDir::new("warm");
    let base = Content::Source {
        text: WALK_BASE.to_string(),
    };
    let edited = Content::Source {
        text: WALK_BASE.replace("b.val := v + 1;", "b.val := v + 2;"),
    };
    let contents = vec![base.clone(), edited.clone()];
    let checker = DiffChecker::new(&contents);

    let mut sids = Vec::new();
    let handle = boot(dir.path(), 0);
    {
        let mut d = Driver::connect(handle.addr());
        for content in &contents {
            let (sid, _) = d.load(content, &checker);
            sids.push(sid);
        }
    }
    stop(handle);

    // Fresh process, same journal: the replay recompiles both versions
    // through a cold IncrCompiler, so the walk is exact — the base
    // version misses all n units, the edit hits n−1 and misses 1.
    let handle = boot(dir.path(), 0);
    let mut d = Driver::connect(handle.addr());
    let s = d.stats();
    assert_eq!(counter(&s, "journal.replayed"), 2);
    assert_eq!(
        counter(&s, "incr.func_hits"),
        WALK_UNITS - 1,
        "recovery replays every unchanged unit of the edit from cache"
    );
    assert_eq!(
        counter(&s, "incr.func_misses"),
        WALK_UNITS + 1,
        "recovery re-lowers the base's {WALK_UNITS} units and the 1 edited unit"
    );

    // Both sessions answer under their old ids, byte-identically.
    for (content, old_sid) in contents.iter().zip(&sids) {
        let (sid, cached) = d.load(content, &checker);
        assert!(cached);
        assert_eq!(&sid, old_sid);
        sweep_queries(&mut d, &checker, content, &sid);
    }

    assert_eq!(checker.mismatches(), 0, "{:?}", checker.details());
    stop(handle);
}

/// Every fault in a seeded schedule — torn tails, truncations, bit
/// flips, duplicated records — leaves a journal that still boots, and
/// the booted server recovers *exactly* the prefix that `scan` + `fold`
/// predict, answering for each survivor byte-identically.
#[test]
fn seeded_fault_schedules_recover_predicted_prefixes_byte_identically() {
    const VERSIONS: usize = 5;
    let contents = mutate_contents(23, VERSIONS);

    // Build one pristine journal to corrupt over and over.
    let pristine_dir = JournalDir::new("fault-src");
    let mut sids = Vec::new();
    {
        let checker = DiffChecker::new(&contents);
        let handle = boot(pristine_dir.path(), 0);
        let mut d = Driver::connect(handle.addr());
        for content in &contents {
            let (sid, _) = d.load(content, &checker);
            sids.push(sid);
        }
        stop(handle);
    }
    let pristine = std::fs::read(pristine_dir.file()).expect("journal exists");
    assert!(
        pristine.len() > journal::MAGIC.len(),
        "the pristine journal holds records"
    );

    let plan = FaultPlan::schedule(0xFA17, 8);
    for (i, f) in plan.faults.iter().enumerate() {
        // Corrupt a copy and predict the recovery from the bytes alone.
        let mut bytes = pristine.clone();
        fault::apply(&mut bytes, f);
        let scanned = journal::scan(&bytes);
        let (predicted, _max_sid) = journal::fold(&scanned.records);

        let dir = JournalDir::new(&format!("fault-{i}"));
        std::fs::create_dir_all(dir.path()).expect("mkdir");
        std::fs::write(dir.file(), &bytes).expect("write corrupted journal");

        let handle = boot(dir.path(), 0);
        let mut d = Driver::connect(handle.addr());
        let s = d.stats();
        assert_eq!(
            counter(&s, "journal.replayed"),
            predicted.len() as i64,
            "fault {i} ({f:?}): recovery must restore exactly the \
             well-formed prefix, no more, no less"
        );

        // Each predicted survivor answers under its journaled id with
        // oracle-identical bytes; a fresh checker per fault keeps the
        // sid bookkeeping independent across schedules.
        let checker = DiffChecker::new(&contents);
        for live in &predicted {
            let content = contents
                .iter()
                .find(|c| c.key().display() == live.key)
                .expect("journaled key is one of the corpus contents");
            let (sid, cached) = d.load(content, &checker);
            assert!(cached, "fault {i}: survivor {} must not recompile", live.key);
            assert_eq!(sid, live.sid, "fault {i}: survivor answers under its id");
            sweep_queries(&mut d, &checker, content, &sid);
        }
        assert_eq!(checker.mismatches(), 0, "fault {i}: {:?}", checker.details());
        stop(handle);
    }

    // The schedule must have exercised all four fault kinds.
    let kinds: std::collections::HashSet<_> = plan
        .faults
        .iter()
        .map(|f| match f {
            Fault::TornTail { .. } => "torn",
            Fault::Truncate { .. } => "truncate",
            Fault::BitFlip { .. } => "flip",
            Fault::DuplicateSeq { .. } => "dup",
        })
        .collect();
    assert_eq!(kinds.len(), 4, "schedule covers every fault kind");
}
