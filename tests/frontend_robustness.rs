//! Robustness properties of the front end: the lexer, parser, and
//! checker must never panic, whatever bytes they are fed — they either
//! succeed or return diagnostics.
//!
//! Random inputs come from the workspace's deterministic
//! [`tbaa_bench::rng::XorShift64`] (fixed seeds) rather than the
//! `proptest` crate, which the offline build cannot fetch.
#![cfg(feature = "proptest-tests")]

use tbaa_bench::rng::XorShift64;

const CASES: u64 = 256;
const SEED: u64 = 0x7baa_0002;

/// A random string of up to `max_len` mostly-printable unicode chars,
/// with control characters and non-BMP scalars mixed in.
fn arbitrary_text(rng: &mut XorShift64, max_len: usize) -> String {
    let len = rng.index(max_len + 1);
    let mut s = String::new();
    for _ in 0..len {
        let c = match rng.index(8) {
            // Mostly ASCII so the lexer gets past the first byte often.
            0..=4 => (0x20 + rng.index(0x5f)) as u8 as char,
            5 => (rng.index(0x20)) as u8 as char, // control chars
            6 => char::from_u32(0xA0 + rng.index(0x2000) as u32).unwrap_or('¤'),
            _ => char::from_u32(rng.index(0x11_0000) as u32).unwrap_or('\u{FFFD}'),
        };
        s.push(c);
    }
    s
}

/// Arbitrary unicode input never panics the full front end.
#[test]
fn compile_never_panics_on_arbitrary_text() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(SEED + case);
        let src = arbitrary_text(&mut rng, 400);
        let _ = mini_m3::compile(&src);
    }
}

/// Token-shaped soup (identifiers, keywords, punctuation) never
/// panics — this digs deeper into the parser than raw bytes do.
#[test]
fn compile_never_panics_on_token_soup() {
    const TOKS: [&str; 29] = [
        "MODULE", "BEGIN", "END", "VAR", "TYPE", "OBJECT", "IF", "THEN", "WHILE", "DO", "FOR",
        "TO", "WITH", "RETURN", ":=", "=", ";", ".", "(", ")", "[", "]", "^", "x", "T", "M", "1",
        "+", "NIL",
    ];
    for case in 0..CASES {
        let mut rng = XorShift64::new(SEED + 0x5000 + case);
        let n = rng.index(60);
        let src = (0..n)
            .map(|_| *rng.pick(&TOKS))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = mini_m3::compile(&src);
    }
}

/// A syntactically valid skeleton with arbitrary identifiers either
/// compiles or produces diagnostics pointing into the source.
#[test]
fn diagnostics_have_sane_spans() {
    const FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    for case in 0..CASES {
        let mut rng = XorShift64::new(SEED.wrapping_add(0x1000 + case));
        let mut name = String::new();
        name.push(*rng.pick(FIRST) as char);
        for _ in 0..rng.index(9) {
            name.push(*rng.pick(REST) as char);
        }
        let src = format!("MODULE M; VAR x: INTEGER; BEGIN x := {name}; END M.");
        match mini_m3::compile(&src) {
            Ok(_) => {}
            Err(diags) => {
                for d in diags.iter() {
                    assert!((d.span.start as usize) <= src.len());
                    assert!((d.span.end as usize) <= src.len() + 1);
                }
            }
        }
    }
}

/// Deterministic negative cases with exact diagnostics.
#[test]
fn negative_cases_report_not_panic() {
    let cases = [
        "",                       // empty
        "MODULE",                 // truncated header
        "MODULE M; BEGIN END N.", // name mismatch
        "MODULE M; TYPE T = OBJECT f: Missing; END; BEGIN END M.",
        "MODULE M; TYPE A = B; B = A; BEGIN END M.", // type cycle
        "MODULE M; VAR x: INTEGER; BEGIN x := TRUE; END M.",
        "MODULE M; BEGIN RETURN 1; END M.", // value return in main
        "MODULE M; VAR x: INTEGER; BEGIN x := y; END M.",
        "MODULE M; PROCEDURE F (): INTEGER = BEGIN RETURN 1 END G; BEGIN END M.",
        "MODULE M; BEGIN WITH w = 1 DO w := 2 END; END M.",
        "MODULE M; TYPE T = OBJECT END; BEGIN EVAL NEW(T, 3); END M.",
        "MODULE M; VAR a: ARRAY OF INTEGER; BEGIN a := NEW(ARRAY OF INTEGER); END M.",
    ];
    for src in cases {
        assert!(
            mini_m3::compile(src).is_err(),
            "expected diagnostics for: {src}"
        );
    }
}

/// The diagnostics renderer produces one line per error with
/// line:column prefixes.
#[test]
fn diagnostics_render_with_positions() {
    let src = "MODULE M;\nVAR x: INTEGER;\nBEGIN\n  x := nope;\nEND M.";
    let err = mini_m3::compile(src).unwrap_err();
    let map = mini_m3::span::LineMap::new(src);
    let rendered = err.render(&map);
    assert!(rendered.contains("4:"), "error on line 4: {rendered}");
    assert!(rendered.contains("undefined name"), "{rendered}");
}
