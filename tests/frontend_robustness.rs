//! Robustness properties of the front end: the lexer, parser, and
//! checker must never panic, whatever bytes they are fed — they either
//! succeed or return diagnostics.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary unicode input never panics the full front end.
    #[test]
    fn compile_never_panics_on_arbitrary_text(src in ".{0,400}") {
        let _ = mini_m3::compile(&src);
    }

    /// Token-shaped soup (identifiers, keywords, punctuation) never
    /// panics — this digs deeper into the parser than raw bytes do.
    #[test]
    fn compile_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("MODULE"), Just("BEGIN"), Just("END"), Just("VAR"),
                Just("TYPE"), Just("OBJECT"), Just("IF"), Just("THEN"),
                Just("WHILE"), Just("DO"), Just("FOR"), Just("TO"),
                Just("WITH"), Just("RETURN"), Just(":="), Just("="),
                Just(";"), Just("."), Just("("), Just(")"), Just("["),
                Just("]"), Just("^"), Just("x"), Just("T"), Just("M"),
                Just("1"), Just("+"), Just("NIL"), Just("NEW"),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = mini_m3::compile(&src);
    }

    /// A syntactically valid skeleton with arbitrary identifiers either
    /// compiles or produces diagnostics pointing into the source.
    #[test]
    fn diagnostics_have_sane_spans(name in "[A-Za-z][A-Za-z0-9]{0,8}") {
        let src = format!(
            "MODULE M; VAR x: INTEGER; BEGIN x := {name}; END M."
        );
        match mini_m3::compile(&src) {
            Ok(_) => {}
            Err(diags) => {
                for d in diags.iter() {
                    prop_assert!((d.span.start as usize) <= src.len());
                    prop_assert!((d.span.end as usize) <= src.len() + 1);
                }
            }
        }
    }
}

/// Deterministic negative cases with exact diagnostics.
#[test]
fn negative_cases_report_not_panic() {
    let cases = [
        "",                       // empty
        "MODULE",                 // truncated header
        "MODULE M; BEGIN END N.", // name mismatch
        "MODULE M; TYPE T = OBJECT f: Missing; END; BEGIN END M.",
        "MODULE M; TYPE A = B; B = A; BEGIN END M.", // type cycle
        "MODULE M; VAR x: INTEGER; BEGIN x := TRUE; END M.",
        "MODULE M; BEGIN RETURN 1; END M.", // value return in main
        "MODULE M; VAR x: INTEGER; BEGIN x := y; END M.",
        "MODULE M; PROCEDURE F (): INTEGER = BEGIN RETURN 1 END G; BEGIN END M.",
        "MODULE M; BEGIN WITH w = 1 DO w := 2 END; END M.",
        "MODULE M; TYPE T = OBJECT END; BEGIN EVAL NEW(T, 3); END M.",
        "MODULE M; VAR a: ARRAY OF INTEGER; BEGIN a := NEW(ARRAY OF INTEGER); END M.",
    ];
    for src in cases {
        assert!(
            mini_m3::compile(src).is_err(),
            "expected diagnostics for: {src}"
        );
    }
}

/// The diagnostics renderer produces one line per error with
/// line:column prefixes.
#[test]
fn diagnostics_render_with_positions() {
    let src = "MODULE M;\nVAR x: INTEGER;\nBEGIN\n  x := nope;\nEND M.";
    let err = mini_m3::compile(src).unwrap_err();
    let map = mini_m3::span::LineMap::new(src);
    let rendered = err.render(&map);
    assert!(rendered.contains("4:"), "error on line 4: {rendered}");
    assert!(rendered.contains("undefined name"), "{rendered}");
}
