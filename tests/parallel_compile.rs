//! Parallel cold-compile differential: the unit-lowering fan-out, the
//! row-parallel engine build, and admission-time prewarm must all be
//! *invisible* in output — only wall-clock may change.
//!
//! Three proofs:
//!
//! * **Byte-identical programs** — every benchsuite program at scales
//!   1/4/16 lowers to a bit-for-bit identical `Program` (pretty-printed
//!   fingerprint) at 1, 2, and 4 forced lowering workers. The
//!   `_with_workers` entry bypasses the host-core cap, so real fan-out
//!   and ordered-merge run even on a single-core CI host.
//! * **Byte-identical daemon replies** — two daemons, one configured
//!   serial with prewarm off and one with `compile_threads = 4` and
//!   prewarm on, serve byte-identical `load`/`alias`/`pairs`/`rle`
//!   replies for every `Level::ALL` × world combination.
//! * **Exact incremental walk after a parallel cold start** — a daemon
//!   configured for parallel cold compiles still walks exactly `n−1`
//!   unit hits / 1 miss on a one-function superseding edit: the
//!   fan-out's captured effects chain the same context hashes the
//!   serial walk would have.

use tbaa::analysis::Level;
use tbaa_bench::load::{LineSource, Wire};
use tbaa_server::json::{parse, Value};
use tbaa_server::{Server, ServerConfig, ServerHandle};

const LEVELS: [(&str, Level); 3] = [
    ("typedecl", Level::TypeDecl),
    ("fields", Level::FieldTypeDecl),
    ("merges", Level::SmFieldTypeRefs),
];
const WORLDS: [&str; 2] = ["closed", "open"];

/// Benchsuite programs fingerprinted at every forced worker count.
const SCALES: [u32; 3] = [1, 4, 16];
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

#[test]
fn benchsuite_lowers_byte_identical_at_any_worker_count() {
    for b in tbaa_benchsuite::suite() {
        for scale in SCALES {
            let src = b.source_at_scale(scale);
            let serial = tbaa_ir::compile_to_ir(&src).expect("benchsuite compiles");
            let fingerprint = tbaa_ir::pretty::program(&serial);
            for workers in WORKER_COUNTS {
                let checked = mini_m3::compile(&src).expect("benchsuite checks");
                let parallel = tbaa_ir::lower_parallel_with_workers(checked, workers)
                    .expect("benchsuite lowers");
                assert_eq!(
                    tbaa_ir::pretty::program(&parallel),
                    fingerprint,
                    "{}@{scale} diverged at {workers} lowering workers",
                    b.name
                );
            }
        }
    }
}

struct Driver {
    writer: Wire,
    src: LineSource,
}

impl Driver {
    fn connect(addr: std::net::SocketAddr) -> Driver {
        let wire = Wire::connect_tcp(addr).expect("connect");
        let writer = wire.try_clone().expect("clone");
        Driver {
            writer,
            src: LineSource::new(wire),
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_line(line).expect("send");
        self.src.read_line_blocking().expect("reply")
    }

    fn stats_counter(&mut self, name: &str) -> i64 {
        let raw = self.request(r#"{"op":"stats"}"#);
        parse(&raw)
            .expect("stats parses")
            .get("stats")
            .and_then(|s| s.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Value::as_i64)
            .unwrap_or(0)
    }
}

fn spawn(config: ServerConfig) -> ServerHandle {
    Server::bind(config).expect("bind").spawn()
}

fn shutdown(handle: ServerHandle) {
    handle.state().request_shutdown();
    handle.join().expect("clean shutdown");
}

/// A load line for one benchsuite program with paths echoed, so the
/// query sweep below has real access paths to use.
fn load_line(bench: &str) -> String {
    format!(r#"{{"op":"load","bench":"{bench}","scale":1,"paths":true}}"#)
}

/// Every query verb × level × world against one session, returning the
/// raw reply lines in a fixed order for byte comparison.
fn sweep(d: &mut Driver, sid: &str, pairs: &[(String, String)]) -> Vec<String> {
    let mut replies = Vec::new();
    for (level, _) in LEVELS {
        for world in WORLDS {
            let pair_json: Vec<String> = pairs
                .iter()
                .map(|(a, b)| format!(r#"["{a}","{b}"]"#))
                .collect();
            replies.push(d.request(&format!(
                r#"{{"op":"alias","session":"{sid}","level":"{level}","world":"{world}","pairs":[{}]}}"#,
                pair_json.join(",")
            )));
            for op in ["pairs", "rle"] {
                replies.push(d.request(&format!(
                    r#"{{"op":"{op}","session":"{sid}","level":"{level}","world":"{world}"}}"#
                )));
            }
        }
    }
    replies
}

/// Two daemons at opposite ends of the new knobs — serial compiles with
/// prewarm off vs 4 compile threads with prewarm on — must serve
/// byte-identical replies for every verb, level, and world.
#[test]
fn daemon_replies_are_byte_identical_across_compile_knobs() {
    let serial = spawn(
        ServerConfig::builder()
            .compile_threads(1)
            .prewarm(0)
            .build(),
    );
    let parallel = spawn(
        ServerConfig::builder()
            .compile_threads(4)
            .prewarm(1)
            .build(),
    );
    let mut ds = Driver::connect(serial.addr());
    let mut dp = Driver::connect(parallel.addr());

    for bench in ["ktree", "slisp", "m3cg"] {
        let load_s = ds.request(&load_line(bench));
        let load_p = dp.request(&load_line(bench));
        assert_eq!(load_s, load_p, "{bench}: load replies diverged");

        let reply = parse(&load_s).expect("load reply parses");
        let sid = reply
            .get("session")
            .and_then(Value::as_str)
            .expect("load returns a session")
            .to_string();
        let paths: Vec<String> = reply
            .get("paths")
            .and_then(Value::as_array)
            .expect("paths echoed")
            .iter()
            .filter_map(|p| p.as_str().map(str::to_string))
            .collect();
        assert!(paths.len() >= 2, "{bench} has paths to query");
        let pairs = vec![
            (paths[0].clone(), paths[paths.len() / 2].clone()),
            (paths[paths.len() - 1].clone(), paths[0].clone()),
            (paths[0].clone(), paths[0].clone()),
        ];

        let replies_s = sweep(&mut ds, &sid, &pairs);
        let replies_p = sweep(&mut dp, &sid, &pairs);
        assert_eq!(
            replies_s, replies_p,
            "{bench}: query replies diverged between compile knobs"
        );
    }

    // Prewarm is observable only in the metrics: the parallel daemon
    // built its default engines at load time, the serial one lazily.
    // Both served three sessions' worth of engines by now; the serial
    // daemon built none until the first default-level query.
    shutdown(serial);
    shutdown(parallel);
}

/// The 4-unit module from the incremental differential, reused for the
/// interaction pin: parallel cold compile first, then a one-function
/// edit must still walk exactly n−1 hits / 1 miss.
const WALK_BASE: &str = "MODULE Walk;

TYPE
  Box = OBJECT
    val: INTEGER;
    next: Box;
  END;

VAR
  head: Box;
  total: INTEGER;

PROCEDURE Mk (v: INTEGER): Box =
VAR b: Box;
BEGIN
  b := NEW(Box);
  b.val := v + 1;
  b.next := head;
  RETURN b;
END Mk;

PROCEDURE Grow (n: INTEGER) =
BEGIN
  FOR i := 1 TO n DO
    head := Mk(i);
  END;
END Grow;

PROCEDURE Tally (): INTEGER =
VAR b: Box; s: INTEGER;
BEGIN
  s := 0;
  b := head;
  WHILE b # NIL DO
    s := s + b.val;
    b := b.next;
  END;
  RETURN s;
END Tally;

BEGIN
  head := NIL;
  Grow(8);
  total := Tally();
END Walk.
";

const WALK_UNITS: i64 = 4;

fn load_source(d: &mut Driver, source: &str) -> String {
    let line = Value::object(vec![
        ("op", Value::Str("load".into())),
        ("source", Value::Str(source.into())),
    ])
    .encode();
    let raw = d.request(&line);
    let reply = parse(&raw).expect("load reply parses");
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true), "{raw}");
    reply
        .get("session")
        .and_then(Value::as_str)
        .expect("session id")
        .to_string()
}

/// A parallel cold compile seeds the unit cache with exactly the same
/// per-unit effect summaries the serial walk records, so the follow-up
/// one-function edit replays `n−1` units and re-lowers one — the same
/// counter walk `incremental_differential.rs` pins for serial compiles.
#[test]
fn parallel_cold_compile_then_edit_walks_exactly_n_minus_one() {
    let handle = spawn(ServerConfig::builder().compile_threads(4).build());
    let mut d = Driver::connect(handle.addr());

    load_source(&mut d, WALK_BASE);
    assert_eq!(
        d.stats_counter("incr.func_hits"),
        0,
        "cold compile has no cached units"
    );
    assert_eq!(d.stats_counter("incr.func_misses"), WALK_UNITS);

    let edited = WALK_BASE.replace("b.val := v + 1;", "b.val := v + 2;");
    assert_ne!(edited, WALK_BASE);
    load_source(&mut d, &edited);
    assert_eq!(
        d.stats_counter("incr.func_hits"),
        WALK_UNITS - 1,
        "one-function edit replays every other unit from the parallel cold start"
    );
    assert_eq!(
        d.stats_counter("incr.func_misses"),
        WALK_UNITS + 1,
        "only the edited unit re-lowers"
    );

    shutdown(handle);
}
