//! Differential soak: the daemon must be byte-identical to the
//! in-process `Pipeline`.
//!
//! Eight concurrent clients drive an in-process `tbaad` with seeded
//! random interleavings of `load`/`alias`/`pairs`/`rle`/`stats` over
//! two benchsuite sessions, and **every** reply is checked against the
//! `tbaa_bench::load::DiffChecker` oracle — the naive tree-walking
//! analysis behind the facade `Pipeline`, deliberately a different
//! implementation from the `CompiledAliasEngine` the daemon serves
//! from. A single byte of divergence anywhere (level/world resolution,
//! path interning, engine answers, reply field order) fails the test.
//!
//! This reuses the exact checker the `tbaa-loadgen` harness ships, so
//! the soak test and the load harness cannot drift apart.

use std::sync::Arc;

use tbaa_bench::load::{CheckOutcome, Content, DiffChecker, LineSource, ReqKind, Wire, WorkloadGen};
use tbaa_server::{Server, ServerConfig};

/// Requests per client. Kept moderate so the soak stays well under the
/// tier-1 budget in debug builds while still crossing every verb,
/// level, and world many times per session.
const REQS_PER_CLIENT: usize = 120;
const CLIENTS: usize = 8;

#[test]
fn eight_clients_byte_identical_to_pipeline() {
    let contents: Arc<Vec<Content>> = Arc::new(vec![
        Content::Bench {
            name: "ktree".into(),
            scale: 1,
        },
        Content::Bench {
            name: "slisp".into(),
            scale: 1,
        },
    ]);
    let checker = Arc::new(DiffChecker::new(&contents));

    let handle = Server::bind(ServerConfig::default()).expect("bind").spawn();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let checker = checker.clone();
            let contents = contents.clone();
            scope.spawn(move || {
                let wire = Wire::connect_tcp(addr).expect("connect");
                let mut writer = wire.try_clone().expect("clone socket");
                let mut src = LineSource::new(wire);
                let mut gen = WorkloadGen::new(0xD1FF + c as u64, contents);
                for _ in 0..REQS_PER_CLIENT {
                    let req = gen.next(checker.oracle());
                    writer.write_line(&req.line).expect("send");
                    let raw = src.read_line_blocking().expect("reply");
                    match checker.check(&req.kind, &raw) {
                        CheckOutcome::Loaded { sid } => {
                            if let ReqKind::Load { key } = &req.kind {
                                gen.observe_load(key, &sid);
                            }
                        }
                        CheckOutcome::Ok | CheckOutcome::Mismatch => {}
                    }
                }
            });
        }
    });

    assert_eq!(
        checker.mismatches(),
        0,
        "daemon diverged from the Pipeline oracle:\n{}",
        checker.details().join("\n")
    );
    assert_eq!(checker.checked(), (CLIENTS * REQS_PER_CLIENT) as u64);

    handle.state().request_shutdown();
    handle.join().expect("server exits cleanly");
}

/// The same soak with a tiny LRU: evictions and recompiles mid-traffic
/// must not change a single reply byte. Clients keep querying session
/// ids that may have been evicted; `no_session` errors are legitimate
/// there, so clients re-load on demand — but any reply that *does*
/// come back for a live session still has to match the oracle exactly.
#[test]
fn byte_identical_under_lru_churn() {
    let contents: Arc<Vec<Content>> = Arc::new(vec![
        Content::Bench {
            name: "ktree".into(),
            scale: 1,
        },
        Content::Bench {
            name: "format".into(),
            scale: 1,
        },
    ]);
    let checker = Arc::new(DiffChecker::new(&contents));

    // Capacity 1: every alternation between the two contents evicts.
    let handle = Server::bind(ServerConfig::builder().session_capacity(1).build())
        .expect("bind")
        .spawn();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for c in 0..4 {
            let checker = checker.clone();
            let contents = contents.clone();
            scope.spawn(move || {
                let wire = Wire::connect_tcp(addr).expect("connect");
                let mut writer = wire.try_clone().expect("clone socket");
                let mut src = LineSource::new(wire);
                let mut rng = tbaa_bench::rng::XorShift64::new(0xC0FFEE + c as u64);
                for i in 0..40 {
                    // Alternate contents so the capacity-1 store churns.
                    let content = &contents[(i + c) % contents.len()];
                    let key = content.key();
                    writer.write_line(&content.load_line()).expect("send load");
                    let raw = src.read_line_blocking().expect("load reply");
                    let kind = ReqKind::Load { key: key.clone() };
                    let CheckOutcome::Loaded { sid } = checker.check(&kind, &raw) else {
                        panic!("load failed under churn: {raw}");
                    };
                    // Immediately query through the possibly-recompiled
                    // session; the reply must still be oracle-exact.
                    let paths = checker.oracle().paths(&key);
                    let pairs = vec![(
                        rng.pick(&paths).clone(),
                        rng.pick(&paths).clone(),
                    )];
                    let kind = ReqKind::Alias {
                        key: key.clone(),
                        sid: sid.clone(),
                        level: tbaa::Level::SmFieldTypeRefs,
                        world: tbaa::World::Closed,
                        pairs: pairs.clone(),
                    };
                    let line = format!(
                        r#"{{"op":"alias","session":"{sid}","level":"merges","world":"closed","pairs":[["{}","{}"]]}}"#,
                        pairs[0].0, pairs[0].1
                    );
                    writer.write_line(&line).expect("send alias");
                    let raw = src.read_line_blocking().expect("alias reply");
                    // The session can be evicted between our load and the
                    // alias when a sibling thread loads the other content;
                    // that surfaces as a structured no_session error, which
                    // is correct behavior — skip the byte check then.
                    if raw.contains("\"no_session\"") {
                        continue;
                    }
                    assert!(
                        matches!(checker.check(&kind, &raw), CheckOutcome::Ok),
                        "alias reply diverged under churn:\n{}",
                        checker.details().join("\n")
                    );
                }
            });
        }
    });

    assert_eq!(
        checker.mismatches(),
        0,
        "churned daemon diverged:\n{}",
        checker.details().join("\n")
    );

    handle.state().request_shutdown();
    handle.join().expect("server exits cleanly");
}
