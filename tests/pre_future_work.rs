//! End-to-end tests for PRE of memory expressions — the paper's §3.7
//! future work — including the Figure 10 ablation: PRE collapses the
//! *Conditional* category.

use tbaa_repro::alias::{Level, Tbaa, World};
use tbaa_repro::benchsuite::suite;
use tbaa_repro::ir;
use tbaa_repro::opt::pre::run_rle_with_pre;
use tbaa_repro::opt::rle::run_rle;
use tbaa_repro::sim::interp::{run, NullHook, RunConfig};
use tbaa_repro::sim::{classify_remaining, RedundancyTrace};

const COND_SRC: &str = "
    MODULE M;
    TYPE T = OBJECT f: INTEGER; END;
    PROCEDURE Mk (): T =
    VAR t: T;
    BEGIN t := NEW(T); t.f := 21; RETURN t END Mk;
    VAR t: T; c: BOOLEAN; x, y: INTEGER;
    BEGIN
      t := Mk(); c := TRUE;
      IF c THEN x := t.f ELSE x := 1 END;
      y := t.f;
      PRINTI(x + y);
    END M.";

#[test]
fn pre_preserves_semantics_and_removes_dynamic_loads() {
    let base = ir::compile_to_ir(COND_SRC).unwrap();
    let base_out = run(&base, &mut NullHook, RunConfig::default()).unwrap();
    assert_eq!(base_out.output, "42");
    let mut opt = ir::compile_to_ir(COND_SRC).unwrap();
    let a = Tbaa::build(&opt, Level::SmFieldTypeRefs, World::Closed);
    let (_, pre) = run_rle_with_pre(&mut opt, &a);
    assert!(pre.inserted >= 1);
    let out = run(&opt, &mut NullHook, RunConfig::default()).unwrap();
    assert_eq!(out.output, "42");
    assert!(out.counts.heap_loads <= base_out.counts.heap_loads);
}

#[test]
fn pre_preserves_every_benchmark_output() {
    for b in suite().iter().filter(|b| !b.interactive) {
        let base = b.compile(1).unwrap();
        let base_out = run(&base, &mut NullHook, RunConfig::default()).unwrap();
        let mut opt = b.compile(1).unwrap();
        let a = Tbaa::build(&opt, Level::SmFieldTypeRefs, World::Closed);
        let (_, pre) = run_rle_with_pre(&mut opt, &a);
        let out = run(&opt, &mut NullHook, RunConfig::default())
            .unwrap_or_else(|e| panic!("{} trapped under PRE: {e}", b.name));
        assert_eq!(base_out.output, out.output, "{} (pre {pre:?})", b.name);
        assert!(
            out.counts.heap_loads <= base_out.counts.heap_loads,
            "{}: PRE must not add dynamic heap loads",
            b.name
        );
    }
}

/// The Figure 10 ablation: running PRE on top of RLE shrinks the
/// Conditional category across the suite.
#[test]
fn pre_shrinks_conditional_category() {
    let mut cond_rle = 0u64;
    let mut cond_pre = 0u64;
    for b in suite().iter().filter(|b| !b.interactive) {
        // RLE only.
        let mut p1 = b.compile(1).unwrap();
        let a1 = Tbaa::build(&p1, Level::SmFieldTypeRefs, World::Closed);
        run_rle(&mut p1, &a1);
        let mut t1 = RedundancyTrace::new();
        run(&p1, &mut t1, RunConfig::default()).unwrap();
        cond_rle += classify_remaining(&mut p1, &a1, &t1).conditional;
        // RLE + PRE.
        let mut p2 = b.compile(1).unwrap();
        let a2 = Tbaa::build(&p2, Level::SmFieldTypeRefs, World::Closed);
        run_rle_with_pre(&mut p2, &a2);
        let mut t2 = RedundancyTrace::new();
        run(&p2, &mut t2, RunConfig::default()).unwrap();
        cond_pre += classify_remaining(&mut p2, &a2, &t2).conditional;
    }
    assert!(
        cond_pre <= cond_rle,
        "PRE must not grow the Conditional category: {cond_pre} vs {cond_rle}"
    );
    assert!(
        cond_rle == 0 || cond_pre < cond_rle,
        "PRE should collapse some Conditional redundancy: {cond_pre} vs {cond_rle}"
    );
}
