//! MiniM3 semantics conformance: each case runs a small program through
//! the full pipeline (front end → IR → interpreter) and checks its
//! output, both unoptimized and under the complete optimizer stack —
//! so every language feature doubles as an optimizer-correctness test.

use tbaa_repro::alias::Level;
use tbaa_repro::ir;
use tbaa_repro::opt::{optimize, OptOptions};
use tbaa_repro::sim::interp::{run, NullHook, RunConfig, RuntimeError};

/// Runs `src` and asserts it prints `expected`, unoptimized and fully
/// optimized.
fn check(src: &str, expected: &str) {
    let prog = ir::compile_to_ir(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let out = run(&prog, &mut NullHook, RunConfig::default())
        .unwrap_or_else(|e| panic!("run failed: {e}\n{src}"));
    assert_eq!(out.output, expected, "unoptimized\n{src}");
    let mut opt = ir::compile_to_ir(src).unwrap();
    let mut opts = OptOptions::full(Level::SmFieldTypeRefs);
    opts.copy_propagation = true;
    opts.dead_store_elimination = true;
    optimize(&mut opt, &opts);
    let out2 = run(&opt, &mut NullHook, RunConfig::default())
        .unwrap_or_else(|e| panic!("optimized run failed: {e}\n{src}"));
    assert_eq!(out2.output, expected, "optimized\n{src}");
}

#[test]
fn arithmetic_div_mod_floor() {
    // Modula-3 DIV/MOD are flooring.
    check(
        "MODULE M; BEGIN
           PRINTI(7 DIV 2); PRINT(\" \");
           PRINTI(-7 DIV 2); PRINT(\" \");
           PRINTI(7 MOD 2); PRINT(\" \");
           PRINTI(-7 MOD 2);
         END M.",
        "3 -4 1 1",
    );
}

#[test]
fn precedence_and_unary() {
    check(
        "MODULE M; BEGIN PRINTI(2 + 3 * 4 - -6); PRINTI(-(2 + 3)); END M.",
        "20-5",
    );
}

#[test]
fn boolean_short_circuit() {
    // The right operand must not evaluate when short-circuited: division
    // by zero would trap.
    check(
        "MODULE M;
         VAR z: INTEGER; b: BOOLEAN;
         BEGIN
           z := 0;
           b := (z = 0) OR (10 DIV z > 1);
           IF b THEN PRINT(\"or-ok\") END;
           b := (z # 0) AND (10 DIV z > 1);
           IF NOT b THEN PRINT(\" and-ok\") END;
         END M.",
        "or-ok and-ok",
    );
}

#[test]
fn char_ops() {
    check(
        "MODULE M;
         VAR c: CHAR;
         BEGIN
           c := 'a';
           PRINTI(ORD(c));
           PRINT(CTOT(CHR(ORD(c) + 1)));
           IF 'a' < 'b' THEN PRINT(\"lt\") END;
         END M.",
        "97blt",
    );
}

#[test]
fn text_ops() {
    check(
        "MODULE M;
         VAR t: TEXT;
         BEGIN
           t := \"abc\" & \"def\";
           PRINTI(TEXTLEN(t));
           PRINT(CTOT(TEXTCHAR(t, 4)));
           PRINT(ITOT(-12));
         END M.",
        "6e-12",
    );
}

#[test]
fn for_loop_by_steps() {
    check(
        "MODULE M;
         VAR s: INTEGER;
         BEGIN
           s := 0;
           FOR i := 0 TO 10 BY 3 DO s := s + i END;  (* 0+3+6+9 *)
           FOR i := 5 TO 1 BY -2 DO s := s + i END;  (* 5+3+1 *)
           FOR i := 3 TO 1 DO s := s + 100 END;      (* zero trips *)
           PRINTI(s);
         END M.",
        "27",
    );
}

#[test]
fn repeat_runs_at_least_once() {
    check(
        "MODULE M;
         VAR n: INTEGER;
         BEGIN
           n := 10;
           REPEAT n := n + 1 UNTIL n > 5;
           PRINTI(n);
         END M.",
        "11",
    );
}

#[test]
fn loop_exit_nested() {
    check(
        "MODULE M;
         VAR i, j, s: INTEGER;
         BEGIN
           i := 0;
           LOOP
             i := i + 1;
             j := 0;
             LOOP
               j := j + 1;
               IF j = 3 THEN EXIT END;
             END;
             s := s + j;
             IF i = 4 THEN EXIT END;
           END;
           PRINTI(s);
         END M.",
        "12",
    );
}

#[test]
fn with_value_and_alias_bindings() {
    check(
        "MODULE M;
         TYPE T = OBJECT f: INTEGER; END;
         VAR t: T; x: INTEGER;
         BEGIN
           t := NEW(T); t.f := 10;
           WITH v = t.f * 2, w = t.f DO
             x := v;          (* value binding: 20 *)
             w := w + 1;      (* alias binding writes through *)
           END;
           PRINTI(x); PRINTI(t.f);
         END M.",
        "2011",
    );
}

#[test]
fn with_alias_freezes_base() {
    // The WITH alias must keep referring to the original object even if
    // the variable is reassigned inside the body.
    check(
        "MODULE M;
         TYPE T = OBJECT f: INTEGER; END;
         VAR t, keep: T;
         BEGIN
           t := NEW(T); t.f := 1; keep := t;
           WITH w = t.f DO
             t := NEW(T);
             t.f := 99;
             w := 42;          (* writes the ORIGINAL object *)
           END;
           PRINTI(keep.f); PRINTI(t.f);
         END M.",
        "4299",
    );
}

#[test]
fn var_params_through_chains() {
    check(
        "MODULE M;
         PROCEDURE Inc (VAR x: INTEGER) = BEGIN x := x + 1 END Inc;
         PROCEDURE Twice (VAR x: INTEGER) = BEGIN Inc(x); Inc(x) END Twice;
         VAR g: INTEGER;
         BEGIN g := 5; Twice(g); PRINTI(g); END M.",
        "7",
    );
}

#[test]
fn var_param_on_array_element() {
    check(
        "MODULE M;
         TYPE A = ARRAY OF INTEGER;
         PROCEDURE Bump (VAR x: INTEGER) = BEGIN x := x * 10 END Bump;
         VAR a: A;
         BEGIN
           a := NEW(A, 3);
           a[1] := 7;
           Bump(a[1]);
           PRINTI(a[1]);
         END M.",
        "70",
    );
}

#[test]
fn object_identity_vs_value() {
    check(
        "MODULE M;
         TYPE T = OBJECT f: INTEGER; END;
         VAR a, b: T;
         BEGIN
           a := NEW(T); b := NEW(T);
           IF a = a THEN PRINT(\"same\") END;
           IF a # b THEN PRINT(\" diff\") END;
           b := a;
           b.f := 3;
           PRINTI(a.f);  (* aliased now *)
         END M.",
        "same diff3",
    );
}

#[test]
fn inheritance_field_layout() {
    check(
        "MODULE M;
         TYPE
           A = OBJECT x: INTEGER; END;
           B = A OBJECT y: INTEGER; END;
           C = B OBJECT z: INTEGER; END;
         VAR c: C; a: A;
         BEGIN
           c := NEW(C);
           c.x := 1; c.y := 2; c.z := 3;
           a := c;
           PRINTI(a.x); PRINTI(c.y); PRINTI(c.z);
         END M.",
        "123",
    );
}

#[test]
fn method_dispatch_through_supertype_view() {
    check(
        "MODULE M;
         TYPE
           A = OBJECT METHODS tag (): INTEGER := TagA; END;
           B = A OBJECT OVERRIDES tag := TagB; END;
           C = B OBJECT OVERRIDES tag := TagC; END;
         PROCEDURE TagA (self: A): INTEGER = BEGIN RETURN 1 END TagA;
         PROCEDURE TagB (self: B): INTEGER = BEGIN RETURN 2 END TagB;
         PROCEDURE TagC (self: C): INTEGER = BEGIN RETURN 3 END TagC;
         VAR a: A;
         BEGIN
           a := NEW(A); PRINTI(a.tag());
           a := NEW(B); PRINTI(a.tag());
           a := NEW(C); PRINTI(a.tag());
         END M.",
        "123",
    );
}

#[test]
fn inherited_method_not_overridden() {
    check(
        "MODULE M;
         TYPE
           A = OBJECT v: INTEGER; METHODS get (): INTEGER := Get; END;
           B = A OBJECT w: INTEGER; END;
         PROCEDURE Get (self: A): INTEGER = BEGIN RETURN self.v END Get;
         VAR b: B;
         BEGIN b := NEW(B); b.v := 9; PRINTI(b.get()); END M.",
        "9",
    );
}

#[test]
fn method_with_args_and_var_param() {
    check(
        "MODULE M;
         TYPE Counter = OBJECT n: INTEGER;
              METHODS addTo (k: INTEGER; VAR out: INTEGER) := AddTo; END;
         PROCEDURE AddTo (self: Counter; k: INTEGER; VAR out: INTEGER) =
         BEGIN out := self.n + k END AddTo;
         VAR c: Counter; r: INTEGER;
         BEGIN
           c := NEW(Counter); c.n := 40;
           c.addTo(2, r);
           PRINTI(r);
         END M.",
        "42",
    );
}

#[test]
fn istype_narrow_hierarchy() {
    check(
        "MODULE M;
         TYPE A = OBJECT END; B = A OBJECT END; C = B OBJECT END;
         VAR a: A;
         BEGIN
           a := NEW(C);
           IF ISTYPE(a, A) THEN PRINT(\"A\") END;
           IF ISTYPE(a, B) THEN PRINT(\"B\") END;
           IF ISTYPE(a, C) THEN PRINT(\"C\") END;
           a := NEW(B);
           IF NOT ISTYPE(a, C) THEN PRINT(\"!C\") END;
         END M.",
        "ABC!C",
    );
}

#[test]
fn records_inside_objects() {
    check(
        "MODULE M;
         TYPE
           Point = RECORD x, y: INTEGER; END;
           Box = OBJECT lo, hi: Point; END;
         VAR b: Box; p: Point;
         BEGIN
           b := NEW(Box);
           b.lo.x := 1; b.lo.y := 2;
           b.hi.x := 10; b.hi.y := 20;
           p := b.hi;               (* record copy out of the heap *)
           p.x := p.x + b.lo.x;
           PRINTI(p.x); PRINTI(b.hi.x);
         END M.",
        "1110",
    );
}

#[test]
fn ref_record_roundtrip() {
    check(
        "MODULE M;
         TYPE R = RECORD a, b: INTEGER; END; P = REF R;
         VAR p, q: P;
         BEGIN
           p := NEW(P); q := NEW(P);
           p^.a := 1; p^.b := 2;
           q^ := p^;
           q^.a := 5;
           PRINTI(p^.a); PRINTI(q^.a); PRINTI(q^.b);
         END M.",
        "152",
    );
}

#[test]
fn fixed_arrays_of_records_in_object() {
    check(
        "MODULE M;
         TYPE
           Pair = RECORD k, v: INTEGER; END;
           Table = OBJECT slots: ARRAY [0..2] OF Pair; n: INTEGER; END;
         VAR t: Table; sum: INTEGER;
         BEGIN
           t := NEW(Table);
           FOR i := 0 TO 2 DO
             t.slots[i].k := i;
             t.slots[i].v := i * i;
           END;
           sum := 0;
           FOR i := 0 TO 2 DO sum := sum + t.slots[i].v END;
           PRINTI(sum);
         END M.",
        "5",
    );
}

#[test]
fn open_array_of_objects() {
    check(
        "MODULE M;
         TYPE T = OBJECT f: INTEGER; END; Arr = ARRAY OF T;
         VAR a: Arr; s: INTEGER;
         BEGIN
           a := NEW(Arr, 4);
           FOR i := 0 TO 3 DO
             a[i] := NEW(T);
             a[i].f := i + 1;
           END;
           s := 0;
           FOR i := 0 TO 3 DO s := s + a[i].f END;
           PRINTI(s); PRINTI(NUMBER(a));
         END M.",
        "104",
    );
}

#[test]
fn nil_checks_and_defaults() {
    check(
        "MODULE M;
         TYPE T = OBJECT f: INTEGER; n: T; END;
         VAR t: T;
         BEGIN
           t := NEW(T);
           IF t.n = NIL THEN PRINT(\"nil\") END;
           PRINTI(t.f);           (* fields default to zero *)
         END M.",
        "nil0",
    );
}

#[test]
fn constants_fold_and_scope() {
    check(
        "MODULE M;
         CONST N = 6; M2 = N * 7;
         VAR x: INTEGER;
         BEGIN x := M2; PRINTI(x); END M.",
        "42",
    );
}

#[test]
fn global_initializers_run_in_order() {
    check(
        "MODULE M;
         TYPE T = OBJECT f: INTEGER; END;
         VAR a: INTEGER := 5;
             t: T := NEW(T);
             b: INTEGER := 37;
         BEGIN
           t.f := a + b;
           PRINTI(t.f);
         END M.",
        "42",
    );
}

#[test]
fn recursion_mutual() {
    check(
        "MODULE M;
         PROCEDURE IsEven (n: INTEGER): BOOLEAN =
         BEGIN
           IF n = 0 THEN RETURN TRUE END;
           RETURN IsOdd(n - 1);
         END IsEven;
         PROCEDURE IsOdd (n: INTEGER): BOOLEAN =
         BEGIN
           IF n = 0 THEN RETURN FALSE END;
           RETURN IsEven(n - 1);
         END IsOdd;
         BEGIN
           IF IsEven(10) THEN PRINT(\"even\") END;
           IF IsOdd(7) THEN PRINT(\" odd\") END;
         END M.",
        "even odd",
    );
}

#[test]
fn min_max_abs() {
    check(
        "MODULE M; BEGIN
           PRINTI(MIN(3, -4)); PRINTI(MAX(3, -4)); PRINTI(ABS(-9));
         END M.",
        "-439",
    );
}

#[test]
fn narrow_failure_traps() {
    let src = "MODULE M;
         TYPE A = OBJECT END; B = A OBJECT END; C = A OBJECT END;
         VAR a: A; b: B;
         BEGIN a := NEW(C); b := NARROW(a, B); END M.";
    let prog = ir::compile_to_ir(src).unwrap();
    let err = run(&prog, &mut NullHook, RunConfig::default()).unwrap_err();
    assert_eq!(err, RuntimeError::NarrowFailed);
}

#[test]
fn deep_recursion_overflows_gracefully() {
    let src = "MODULE M;
         PROCEDURE F (n: INTEGER): INTEGER =
         BEGIN RETURN F(n + 1) END F;
         VAR x: INTEGER;
         BEGIN x := F(0); END M.";
    let prog = ir::compile_to_ir(src).unwrap();
    let err = run(&prog, &mut NullHook, RunConfig::default()).unwrap_err();
    assert_eq!(err, RuntimeError::StackOverflow);
}

#[test]
fn branded_types_behave_like_objects() {
    check(
        "MODULE M;
         TYPE B = BRANDED \"tag\" OBJECT f: INTEGER; END;
              S = B OBJECT END;
         VAR b: B;
         BEGIN
           b := NEW(S);
           b.f := 8;
           IF ISTYPE(b, S) THEN PRINTI(b.f) END;
         END M.",
        "8",
    );
}
