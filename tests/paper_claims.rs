//! Integration tests encoding the paper's qualitative claims over the
//! full benchmark suite. The absolute numbers differ from the 1998 Alpha
//! testbed; these tests pin down the *shape* the paper reports.

use tbaa_repro::alias::{Level, Tbaa, World};
use tbaa_repro::benchsuite::suite;
use tbaa_repro::opt::rle::run_rle;
use tbaa_repro::sim::interp::{run, NullHook, RunConfig};
use tbaa_repro::sim::{classify_remaining, RedundancyTrace};

const SCALE: u32 = 1;

/// §3.3: "TypeDecl performs a lot worse than FieldTypeDecl, and
/// flow-insensitive merging using SMFieldTypeRefs offers little
/// improvement over FieldTypeDecl."
#[test]
fn table5_shape_typedecl_much_worse_fields_close_to_merges() {
    let rows = tbaa_bench_rows();
    let mut td_total = 0usize;
    let mut ftd_total = 0usize;
    let mut sm_total = 0usize;
    for (td, ftd, sm) in &rows {
        td_total += td.global_pairs;
        ftd_total += ftd.global_pairs;
        sm_total += sm.global_pairs;
        assert!(td.global_pairs >= ftd.global_pairs);
        assert!(ftd.global_pairs >= sm.global_pairs);
    }
    assert!(
        td_total as f64 >= 2.0 * ftd_total as f64,
        "TypeDecl should be far coarser: {td_total} vs {ftd_total}"
    );
    assert!(
        (ftd_total as f64) < 1.10 * sm_total as f64 + 16.0,
        "SMFieldTypeRefs offers little static improvement: {ftd_total} vs {sm_total}"
    );
}

fn tbaa_bench_rows() -> Vec<(
    tbaa_repro::alias::AliasPairCounts,
    tbaa_repro::alias::AliasPairCounts,
    tbaa_repro::alias::AliasPairCounts,
)> {
    suite()
        .iter()
        .map(|b| {
            let prog = b.compile(SCALE).unwrap();
            let mk = |level| {
                let a = Tbaa::build(&prog, level, World::Closed);
                tbaa_repro::alias::count_alias_pairs(&prog, &a)
            };
            (
                mk(Level::TypeDecl),
                mk(Level::FieldTypeDecl),
                mk(Level::SmFieldTypeRefs),
            )
        })
        .collect()
}

/// §3.3: interprocedural (global) aliases are much more numerous than
/// intraprocedural (local) ones, suggesting TBAA is too imprecise for
/// interprocedural optimization.
#[test]
fn global_pairs_dominate_local_pairs() {
    let mut local = 0usize;
    let mut global = 0usize;
    for (_, _, sm) in tbaa_bench_rows() {
        local += sm.local_pairs;
        global += sm.global_pairs;
    }
    assert!(
        global >= 3 * local,
        "interprocedural aliasing dominates: {global} vs {local}"
    );
}

/// Table 6's shape: FieldTypeDecl finds more RLE opportunities than
/// TypeDecl, and SMFieldTypeRefs adds (almost) nothing on top.
#[test]
fn table6_shape() {
    let mut td = 0usize;
    let mut ftd = 0usize;
    let mut sm = 0usize;
    for b in suite().iter().filter(|b| !b.interactive) {
        for (slot, level) in [
            (&mut td, Level::TypeDecl),
            (&mut ftd, Level::FieldTypeDecl),
            (&mut sm, Level::SmFieldTypeRefs),
        ] {
            let mut prog = b.compile(SCALE).unwrap();
            let a = Tbaa::build(&prog, level, World::Closed);
            *slot += run_rle(&mut prog, &a).removed();
        }
    }
    assert!(ftd > td, "fields expose more opportunities: {ftd} vs {td}");
    assert!(sm >= ftd);
    assert!(
        sm - ftd <= 2,
        "merges change almost nothing for RLE: {sm} vs {ftd}"
    );
}

/// Figure 9's shape: the optimizer eliminates a large share of the
/// dynamic redundancy (the paper reports 37%–87%).
#[test]
fn fig9_shape_most_redundancy_removed() {
    let mut ratios = Vec::new();
    for b in suite().iter().filter(|b| !b.interactive) {
        let base = b.compile(SCALE).unwrap();
        let mut t0 = RedundancyTrace::new();
        run(&base, &mut t0, RunConfig::default()).unwrap();
        let mut opt = b.compile(SCALE).unwrap();
        let a = Tbaa::build(&opt, Level::SmFieldTypeRefs, World::Closed);
        run_rle(&mut opt, &a);
        let mut t1 = RedundancyTrace::new();
        run(&opt, &mut t1, RunConfig::default()).unwrap();
        assert!(t0.redundant > 0, "{} has redundancy to remove", b.name);
        let removed = 1.0 - t1.redundant as f64 / t0.redundant as f64;
        ratios.push((b.name, removed));
    }
    let avg: f64 = ratios.iter().map(|(_, r)| r).sum::<f64>() / ratios.len() as f64;
    assert!(
        avg > 0.37,
        "average removal should be in the paper's ballpark: {ratios:?}"
    );
}

/// Figure 10's headline: *"we did not encounter a single situation when
/// optimization failed due to inadequacies in our alias analysis"* — the
/// alias-failure category is empty, and what can be attributed is
/// dominated by encapsulated references.
#[test]
fn fig10_no_alias_failures() {
    let mut total_alias_failure = 0u64;
    let mut total_encapsulated = 0u64;
    let mut total = 0u64;
    for b in suite().iter().filter(|b| !b.interactive) {
        let mut opt = b.compile(SCALE).unwrap();
        let a = Tbaa::build(&opt, Level::SmFieldTypeRefs, World::Closed);
        run_rle(&mut opt, &a);
        let mut t = RedundancyTrace::new();
        run(&opt, &mut t, RunConfig::default()).unwrap();
        let breakdown = classify_remaining(&mut opt, &a, &t);
        total_alias_failure += breakdown.alias_failure;
        total_encapsulated += breakdown.encapsulated;
        total += breakdown.total();
    }
    assert_eq!(
        total_alias_failure, 0,
        "a perfect alias analysis would gain nothing on these programs"
    );
    assert!(
        total_encapsulated * 2 >= total,
        "encapsulated references dominate the remainder: {total_encapsulated}/{total}"
    );
}

/// Figure 12's shape: the open-world assumption costs essentially
/// nothing — RLE removes the same loads on (almost) every benchmark.
#[test]
fn fig12_open_world_costs_little() {
    let mut diffs = 0usize;
    for b in suite().iter().filter(|b| !b.interactive) {
        let removed = |world| {
            let mut prog = b.compile(SCALE).unwrap();
            let a = Tbaa::build(&prog, Level::SmFieldTypeRefs, world);
            run_rle(&mut prog, &a).removed()
        };
        let closed = removed(World::Closed);
        let open = removed(World::Open);
        assert!(open <= closed);
        if open != closed {
            diffs += closed - open;
        }
    }
    assert!(
        diffs <= 2,
        "open world changes at most a couple of loads: {diffs}"
    );
}

/// §3.4.2: RLE with TBAA improves simulated run time modestly on every
/// benchmark (the paper reports 1%–8%, average 4%).
#[test]
fn fig8_improvements_are_modest_but_real() {
    let mut pcts = Vec::new();
    for b in suite().iter().filter(|b| !b.interactive) {
        let base = b.compile(SCALE).unwrap();
        let (_, _, c0) = tbaa_repro::sim::simulate(&base, RunConfig::default()).unwrap();
        let mut opt = b.compile(SCALE).unwrap();
        let a = Tbaa::build(&opt, Level::SmFieldTypeRefs, World::Closed);
        run_rle(&mut opt, &a);
        let (_, _, c1) = tbaa_repro::sim::simulate(&opt, RunConfig::default()).unwrap();
        pcts.push((b.name, 100.0 * c1 / c0));
    }
    for (name, pct) in &pcts {
        assert!(*pct <= 100.5, "{name} must not regress: {pct:.1}%");
        assert!(*pct >= 70.0, "{name} improvement stays modest: {pct:.1}%");
    }
    let avg: f64 = pcts.iter().map(|(_, p)| p).sum::<f64>() / pcts.len() as f64;
    assert!(
        (88.0..100.0).contains(&avg),
        "average improvement in the paper's ballpark: {pcts:?}"
    );
}

/// Output preservation across every configuration the tables use.
#[test]
fn all_configurations_preserve_outputs() {
    for b in suite().iter().filter(|b| !b.interactive) {
        let base = b.compile(SCALE).unwrap();
        let base_out = run(&base, &mut NullHook, RunConfig::default()).unwrap();
        for world in [World::Closed, World::Open] {
            for level in Level::ALL {
                let mut prog = b.compile(SCALE).unwrap();
                let a = Tbaa::build(&prog, level, world);
                run_rle(&mut prog, &a);
                let out = run(&prog, &mut NullHook, RunConfig::default()).unwrap();
                assert_eq!(
                    base_out.output, out.output,
                    "{} under {level}/{world:?}",
                    b.name
                );
            }
        }
    }
}
