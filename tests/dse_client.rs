//! End-to-end tests for dead store elimination — the second analysis
//! client — over the benchmark suite and under all analysis levels.

use tbaa_repro::alias::{Level, Tbaa, World};
use tbaa_repro::benchsuite::suite;
use tbaa_repro::opt::dse::run_dse;
use tbaa_repro::opt::rle::run_rle;
use tbaa_repro::sim::interp::{run, NullHook, RunConfig};

/// DSE preserves every benchmark's output at every analysis level, and
/// never increases dynamic heap stores.
#[test]
fn dse_preserves_every_benchmark() {
    for b in suite().iter().filter(|b| !b.interactive) {
        let base = b.compile(1).unwrap();
        let base_out = run(&base, &mut NullHook, RunConfig::default()).unwrap();
        for level in Level::ALL {
            let mut opt = b.compile(1).unwrap();
            let a = Tbaa::build(&opt, level, World::Closed);
            let stats = run_dse(&mut opt, &a);
            let out = run(&opt, &mut NullHook, RunConfig::default())
                .unwrap_or_else(|e| panic!("{} trapped under DSE@{level}: {e}", b.name));
            assert_eq!(
                base_out.output, out.output,
                "{} under {level} ({stats:?})",
                b.name
            );
            assert!(out.counts.heap_stores <= base_out.counts.heap_stores);
        }
    }
}

/// RLE + DSE compose: run both and verify semantics plus monotone
/// dynamic improvements.
#[test]
fn rle_then_dse_composes() {
    for b in suite().iter().filter(|b| !b.interactive) {
        let base = b.compile(1).unwrap();
        let base_out = run(&base, &mut NullHook, RunConfig::default()).unwrap();
        let mut opt = b.compile(1).unwrap();
        let a = Tbaa::build(&opt, Level::SmFieldTypeRefs, World::Closed);
        run_rle(&mut opt, &a);
        run_dse(&mut opt, &a);
        let out = run(&opt, &mut NullHook, RunConfig::default()).unwrap();
        assert_eq!(base_out.output, out.output, "{}", b.name);
        assert!(out.counts.heap_loads <= base_out.counts.heap_loads);
        assert!(out.counts.heap_stores <= base_out.counts.heap_stores);
    }
}

/// A hand-built program where DSE's win is measurable dynamically.
#[test]
fn dse_removes_dynamic_stores() {
    let src = "
        MODULE M;
        TYPE Acc = OBJECT partial, result: INTEGER; END;
        VAR a: Acc; s: INTEGER;
        BEGIN
          a := NEW(Acc);
          FOR i := 1 TO 100 DO
            a.partial := i;        (* dead on every iteration but the
                                      last read below never happens:
                                      overwritten next iteration *)
            a.partial := i * 2;
            s := s + a.partial;
          END;
          PRINTI(s);
        END M.";
    let base = tbaa_repro::ir::compile_to_ir(src).unwrap();
    let base_out = run(&base, &mut NullHook, RunConfig::default()).unwrap();
    let mut opt = tbaa_repro::ir::compile_to_ir(src).unwrap();
    let a = Tbaa::build(&opt, Level::SmFieldTypeRefs, World::Closed);
    let stats = run_dse(&mut opt, &a);
    assert_eq!(stats.removed, 1, "the first store in the loop body");
    let out = run(&opt, &mut NullHook, RunConfig::default()).unwrap();
    assert_eq!(base_out.output, out.output);
    assert_eq!(
        out.counts.heap_stores + 100,
        base_out.counts.heap_stores,
        "100 dynamic stores gone"
    );
}
